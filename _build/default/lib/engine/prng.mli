(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in the simulator draws from one of these
    generators so that a run is exactly reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Used to
    hand each host/device its own stream without cross-coupling. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. Used for
    open-loop arrival processes. *)
