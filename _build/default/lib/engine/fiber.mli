(** Simulation processes as effect-handler fibers.

    A fiber is a piece of linear code (a host's main loop, a load
    generator, a device model) that can suspend itself — sleeping for a
    span of virtual time or waiting on a {!Condvar} — and is resumed by
    the event loop. This is the simulator-level analogue of the paper's
    observation that coroutines let I/O stacks keep a linear programming
    flow instead of hand-written state machines. *)

val spawn : Sim.t -> ?name:string -> (unit -> unit) -> unit
(** Start a fiber at the current virtual time. Exceptions escaping the
    fiber body are wrapped in [Failure] with the fiber name and re-raised
    out of {!Sim.run}. *)

val sleep : Sim.t -> Clock.t -> unit
(** Suspend the calling fiber for a span of virtual time. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling fiber and hands its resume
    function to [register]. The resume function must be called exactly
    once, from an event callback or another fiber. This is the only
    suspension primitive; everything else is built on it. *)

val yield : Sim.t -> unit
(** Re-schedule the calling fiber at the current time, letting other
    events at this instant run first. *)
