lib/engine/trace.mli: Clock Format
