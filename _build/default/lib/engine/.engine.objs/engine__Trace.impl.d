lib/engine/trace.ml: Array Clock Format List
