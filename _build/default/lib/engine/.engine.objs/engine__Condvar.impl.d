lib/engine/condvar.ml: Fiber List Sim
