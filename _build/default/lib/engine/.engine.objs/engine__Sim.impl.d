lib/engine/sim.ml: Clock Eventq Prng Trace
