lib/engine/clock.mli: Format
