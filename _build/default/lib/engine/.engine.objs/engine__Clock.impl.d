lib/engine/clock.ml: Format
