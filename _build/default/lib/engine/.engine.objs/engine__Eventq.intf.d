lib/engine/eventq.mli: Clock
