lib/engine/prng.ml: Int64
