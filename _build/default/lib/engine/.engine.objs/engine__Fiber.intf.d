lib/engine/fiber.mli: Clock Sim
