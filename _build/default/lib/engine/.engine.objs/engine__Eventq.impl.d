lib/engine/eventq.ml: Array Clock
