lib/engine/fiber.ml: Effect Printexc Printf Sim
