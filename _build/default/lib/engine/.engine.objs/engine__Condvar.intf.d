lib/engine/condvar.mli: Clock Sim
