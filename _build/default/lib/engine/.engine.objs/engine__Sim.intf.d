lib/engine/sim.mli: Clock Prng Trace
