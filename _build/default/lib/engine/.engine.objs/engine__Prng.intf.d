lib/engine/prng.mli:
