(** Pending-event set for the simulator: a binary min-heap keyed on
    (time, insertion sequence). The sequence number makes simultaneous
    events fire in insertion order, which keeps runs deterministic. *)

type t

val create : unit -> t

val add : t -> time:Clock.t -> (unit -> unit) -> unit
(** Schedule a callback at an absolute virtual time. *)

val pop : t -> (Clock.t * (unit -> unit)) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : t -> Clock.t option
(** Earliest pending time without removing it. *)

val is_empty : t -> bool

val size : t -> int
