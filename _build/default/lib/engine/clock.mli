(** Virtual time for the discrete-event simulator.

    All simulated time is kept in integer nanoseconds. OCaml's native
    [int] is 63 bits, which covers ~146 years of virtual time — far more
    than any experiment needs — while staying unboxed. *)

type t = int
(** A point in (or span of) virtual time, in nanoseconds. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val to_float_us : t -> float
(** Span in microseconds, for reporting. *)

val to_float_ms : t -> float
(** Span in milliseconds, for reporting. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
