(** Broadcast condition variables for fibers.

    Used wherever a simulated component needs to park until "something
    arrived": a NIC rx ring signals its host, a completion queue signals
    a poller. As with pthread condition variables, a waiter must re-check
    its predicate after waking — wakeups are permission to look, not a
    value. *)

type t

val create : Sim.t -> t

val wait : t -> unit
(** Park the calling fiber until the next {!broadcast}. *)

val wait_timeout : t -> Clock.t -> [ `Signaled | `Timeout ]
(** Park until a broadcast or until the span elapses, whichever comes
    first. *)

val broadcast : t -> unit
(** Wake every currently-parked waiter (in FIFO order, at the current
    virtual time). Waiters arriving after this call are not woken. *)

val wait_many : Sim.t -> t list -> timeout:Clock.t option -> [ `Signaled | `Timeout ]
(** Park until any of the condition variables broadcasts, or until the
    (absolute-span) timeout elapses. With an empty list and no timeout
    the caller sleeps forever. *)

val waiters : t -> int
(** Number of currently-parked fibers (for tests and introspection). *)
