type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6

let pp fmt t =
  let ft = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (ft /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (ft /. 1e6)
  else Format.fprintf fmt "%.3fs" (ft /. 1e9)
