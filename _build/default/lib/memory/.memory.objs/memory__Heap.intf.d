lib/memory/heap.mli: Bytes
