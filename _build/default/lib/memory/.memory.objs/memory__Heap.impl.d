lib/memory/heap.ml: Array Bytes Hashtbl List Sizeclass String
