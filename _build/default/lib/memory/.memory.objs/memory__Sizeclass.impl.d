lib/memory/sizeclass.ml:
