lib/memory/sizeclass.mli:
