(** Hoard-style size classes.

    Allocation requests are rounded up to a fixed set of power-of-two
    classes; each superblock serves exactly one class. The paper limits
    zero-copy machinery (refcount bitmaps, DMA registration) to classes
    above 1 kB (§5.3) — below that, copying is cheaper than coordination. *)

val min_class : int
(** Smallest object size (64 B). *)

val max_class : int
(** Largest object size served from superblocks (1 MB). Larger requests
    are rejected — µs-scale datapaths don't allocate them per-I/O. *)

val class_count : int

val index_of_size : int -> int
(** Class index for a request. Raises [Invalid_argument] if the request
    is zero, negative or beyond [max_class]. *)

val size_of_index : int -> int
(** Object size of a class. *)

val zero_copy_threshold : int
(** 1024, per §5.3: zero-copy I/O pays off only above 1 kB. *)

val zero_copy_eligible : int -> bool
(** Whether a buffer of the given size takes the zero-copy path. *)
