let min_class = 64
let max_class = 1 lsl 20
let zero_copy_threshold = 1024

(* Classes: 64, 128, ..., 2^20. *)
let class_count =
  let rec go size n = if size > max_class then n else go (size * 2) (n + 1) in
  go min_class 0

let size_of_index i =
  assert (i >= 0 && i < class_count);
  min_class lsl i

let index_of_size size =
  if size <= 0 then invalid_arg "Sizeclass.index_of_size: non-positive size";
  if size > max_class then invalid_arg "Sizeclass.index_of_size: size beyond max class";
  let rec go i = if size_of_index i >= size then i else go (i + 1) in
  go 0

let zero_copy_eligible size = size > zero_copy_threshold
