(** The TURN-style UDP relay of §7.2/§7.4.

    Datagram format: [u32 session][u8 op] payload, where op 0 registers
    the sender as the session's receiver and op 1 relays the payload to
    the registered receiver. The benchmark generator registers itself,
    then measures the send-to-relayed-receive round trip — server-side
    cycles per relayed packet are the metric that matters at Teams/Skype
    scale. *)

val server : ?port:int -> Demikernel.Pdpix.api -> unit

val generator :
  dst:Net.Addr.endpoint ->
  src_port:int ->
  session:int ->
  msg_size:int ->
  count:int ->
  ?record:(int -> unit) ->
  ?on_done:(unit -> unit) ->
  Demikernel.Pdpix.api ->
  unit
