open Demikernel

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Net.Wire.set_u32 b 0 n;
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type accum = { buf : Buffer.t }

let create () = { buf = Buffer.create 256 }

let feed a s = Buffer.add_string a.buf s

let buffered a = Buffer.length a.buf

let next a =
  let len = Buffer.length a.buf in
  if len < 4 then None
  else begin
    let contents = Buffer.contents a.buf in
    let b = Bytes.unsafe_of_string contents in
    let msg_len = Net.Wire.get_u32 b 0 in
    if len < 4 + msg_len then None
    else begin
      let msg = String.sub contents 4 msg_len in
      Buffer.clear a.buf;
      Buffer.add_substring a.buf contents (4 + msg_len) (len - 4 - msg_len);
      Some msg
    end
  end

type chan = { api : Pdpix.api; qd : Pdpix.qd; acc : accum; mutable eof : bool }

let chan_of_qd api qd = { api; qd; acc = create (); eof = false }

let send c payload =
  let buf = c.api.Pdpix.alloc_str (encode payload) in
  match c.api.Pdpix.wait (c.api.Pdpix.push c.qd [ buf ]) with
  | Pdpix.Pushed -> c.api.Pdpix.free buf
  | Pdpix.Failed why -> failwith ("Framing.send: " ^ why)
  | _ -> failwith "Framing.send: unexpected completion"

let rec recv c =
  match next c.acc with
  | Some msg -> Some msg
  | None ->
      if c.eof then None
      else begin
        (match c.api.Pdpix.wait (c.api.Pdpix.pop c.qd) with
        | Pdpix.Popped [] -> c.eof <- true
        | Pdpix.Popped sga ->
            List.iter
              (fun buf ->
                feed c.acc (Memory.Heap.to_string buf);
                c.api.Pdpix.free buf)
              sga
        | Pdpix.Failed _ -> c.eof <- true
        | _ -> failwith "Framing.recv: unexpected completion");
        recv c
      end

let connect api dst =
  let qd = api.Pdpix.socket Pdpix.Tcp in
  match api.Pdpix.wait (api.Pdpix.connect qd dst) with
  | Pdpix.Connected -> chan_of_qd api qd
  | Pdpix.Failed why -> failwith ("Framing.connect: " ^ why)
  | _ -> failwith "Framing.connect: unexpected completion"

let close c = c.api.Pdpix.close c.qd
