open Demikernel

(* Roles attached to outstanding tokens in the server's wait_any set. *)
type role = Accept | Conn of Pdpix.qd

let server ?(port = 7) ?(persist = false) (api : Pdpix.api) =
  let lqd = api.Pdpix.socket Pdpix.Tcp in
  api.Pdpix.bind lqd (Net.Addr.endpoint 0 port);
  api.Pdpix.listen lqd ~backlog:64;
  let log = if persist then Some (api.Pdpix.open_log "echo.log") else None in
  let tokens = ref [ (api.Pdpix.accept lqd, Accept) ] in
  let add qt role = tokens := !tokens @ [ (qt, role) ] in
  let remove i = tokens := List.filteri (fun j _ -> j <> i) !tokens in
  let rec loop () =
    let arr = Array.of_list (List.map fst !tokens) in
    let i, completion = api.Pdpix.wait_any arr in
    let _, role = List.nth !tokens i in
    remove i;
    (match (completion, role) with
    | Pdpix.Accepted qd, Accept ->
        add (api.Pdpix.accept lqd) Accept;
        add (api.Pdpix.pop qd) (Conn qd)
    | Pdpix.Popped [], Conn qd -> api.Pdpix.close qd (* EOF *)
    | Pdpix.Popped sga, Conn qd ->
        (match log with
        | Some l -> (
            (* Synchronous persistence before the reply (Figure 7). *)
            match api.Pdpix.wait (api.Pdpix.push l sga) with
            | Pdpix.Pushed -> ()
            | _ -> failwith "echo: log append failed")
        | None -> ());
        let push_qt = api.Pdpix.push qd sga in
        (match api.Pdpix.wait push_qt with
        | Pdpix.Pushed ->
            (* Ownership returned; UAF protection covers retransmits. *)
            List.iter api.Pdpix.free sga
        | Pdpix.Failed _ -> List.iter api.Pdpix.free sga
        | _ -> failwith "echo: unexpected push completion");
        add (api.Pdpix.pop qd) (Conn qd)
    | Pdpix.Failed _, Conn qd -> api.Pdpix.close qd
    | Pdpix.Failed _, Accept -> ()
    | _, _ -> failwith "echo server: unexpected completion");
    loop ()
  in
  loop ()

let payload_of_size api n = api.Pdpix.alloc_str (String.make (max 1 n) 'e')

let client ~dst ~msg_size ~count ?record ?on_done (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Tcp in
  (match api.Pdpix.wait (api.Pdpix.connect qd dst) with
  | Pdpix.Connected -> ()
  | Pdpix.Failed why -> failwith ("echo client: connect failed: " ^ why)
  | _ -> failwith "echo client: unexpected connect completion");
  let rec go n =
    if n > 0 then begin
      let start = api.Pdpix.clock () in
      let buf = payload_of_size api msg_size in
      (match api.Pdpix.wait (api.Pdpix.push qd [ buf ]) with
      | Pdpix.Pushed -> api.Pdpix.free buf
      | _ -> failwith "echo client: push failed");
      (* TCP may re-chunk the echo; pop until the whole message is
         back. *)
      let rec collect remaining =
        if remaining > 0 then
          match api.Pdpix.wait (api.Pdpix.pop qd) with
          | Pdpix.Popped (_ :: _ as sga) ->
              let n = Pdpix.sga_length sga in
              List.iter api.Pdpix.free sga;
              collect (remaining - n)
          | Pdpix.Popped [] -> failwith "echo client: server closed early"
          | _ -> failwith "echo client: pop failed"
      in
      collect (max 1 msg_size);
      (match record with Some f -> f (api.Pdpix.clock () - start) | None -> ());
      go (n - 1)
    end
  in
  go count;
  api.Pdpix.close qd;
  match on_done with Some f -> f () | None -> ()

let udp_server ?(port = 7) (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Udp in
  api.Pdpix.bind qd (Net.Addr.endpoint 0 port);
  let rec loop () =
    (match api.Pdpix.wait (api.Pdpix.pop qd) with
    | Pdpix.Popped_from (from, sga) ->
        (match api.Pdpix.wait (api.Pdpix.pushto qd from sga) with
        | Pdpix.Pushed -> List.iter api.Pdpix.free sga
        | _ -> failwith "udp echo: push failed")
    | Pdpix.Failed _ -> ()
    | _ -> failwith "udp echo: unexpected completion");
    loop ()
  in
  loop ()

let udp_client ~dst ~src_port ~msg_size ~count ?record ?on_done (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Udp in
  api.Pdpix.bind qd (Net.Addr.endpoint 0 src_port);
  let rec go n =
    if n > 0 then begin
      let start = api.Pdpix.clock () in
      let buf = payload_of_size api msg_size in
      (match api.Pdpix.wait (api.Pdpix.pushto qd dst [ buf ]) with
      | Pdpix.Pushed -> api.Pdpix.free buf
      | _ -> failwith "udp client: push failed");
      (match api.Pdpix.wait (api.Pdpix.pop qd) with
      | Pdpix.Popped_from (_, sga) -> List.iter api.Pdpix.free sga
      | _ -> failwith "udp client: pop failed");
      (match record with Some f -> f (api.Pdpix.clock () - start) | None -> ());
      go (n - 1)
    end
  in
  go count;
  match on_done with Some f -> f () | None -> ()

let stream_client ~dst ~msg_size ~count ~window ?on_done (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Tcp in
  (match api.Pdpix.wait (api.Pdpix.connect qd dst) with
  | Pdpix.Connected -> ()
  | _ -> failwith "stream client: connect failed");
  (* Keep [window] messages outstanding; count completions by bytes
     echoed back. *)
  let size = max 1 msg_size in
  let sent = ref 0 in
  let rx_bytes = ref 0 in
  let goal_bytes = count * size in
  let send_one () =
    let buf = payload_of_size api msg_size in
    let qt = api.Pdpix.push qd [ buf ] in
    incr sent;
    (qt, buf)
  in
  let outstanding_pushes = Queue.create () in
  (* Window is tracked in bytes because TCP pops re-chunk the stream. *)
  let rec fill () =
    if !sent < count && (!sent * size) - !rx_bytes < window * size then begin
      Queue.add (send_one ()) outstanding_pushes;
      fill ()
    end
  in
  fill ();
  let rec drain () =
    if !rx_bytes < goal_bytes then begin
      (* Retire completed pushes (freeing buffers) without blocking the
         pipeline: wait for the oldest push, then the next pop. *)
      (match Queue.take_opt outstanding_pushes with
      | Some (qt, buf) -> (
          match api.Pdpix.wait qt with
          | Pdpix.Pushed -> api.Pdpix.free buf
          | _ -> failwith "stream client: push failed")
      | None -> ());
      (match api.Pdpix.wait (api.Pdpix.pop qd) with
      | Pdpix.Popped (_ :: _ as sga) ->
          rx_bytes := !rx_bytes + Pdpix.sga_length sga;
          List.iter api.Pdpix.free sga
      | Pdpix.Popped [] -> failwith "stream client: eof"
      | _ -> failwith "stream client: pop failed");
      fill ();
      drain ()
    end
  in
  drain ();
  api.Pdpix.close qd;
  match on_done with Some f -> f () | None -> ()
