(** The echo system of §7.2: a single-coroutine server multiplexing all
    connections with [wait_any], and closed-loop clients. Written once
    against PDPIX; runs on every libOS.

    The server is zero-copy by construction: the popped sga is pushed
    back verbatim and freed immediately after the push — correct only
    because of the datapath OS's use-after-free protection. With
    [persist] it synchronously appends each message to a log before
    replying (the Figure 7 configuration). *)

val server : ?port:int -> ?persist:bool -> Demikernel.Pdpix.api -> unit
(** Runs until the simulation ends. *)

val client :
  dst:Net.Addr.endpoint ->
  msg_size:int ->
  count:int ->
  ?record:(int -> unit) ->
  ?on_done:(unit -> unit) ->
  Demikernel.Pdpix.api ->
  unit
(** Closed-loop TCP echo client; [record] receives each RTT in ns. *)

val udp_server : ?port:int -> Demikernel.Pdpix.api -> unit

val udp_client :
  dst:Net.Addr.endpoint ->
  src_port:int ->
  msg_size:int ->
  count:int ->
  ?record:(int -> unit) ->
  ?on_done:(unit -> unit) ->
  Demikernel.Pdpix.api ->
  unit

val stream_client :
  dst:Net.Addr.endpoint ->
  msg_size:int ->
  count:int ->
  window:int ->
  ?on_done:(unit -> unit) ->
  Demikernel.Pdpix.api ->
  unit
(** Open-loop-ish streaming client keeping [window] echos in flight
    (NetPIPE-style bandwidth measurement, Figure 8). *)
