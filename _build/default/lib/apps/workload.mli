(** Key-popularity and arrival-process generators for the benchmark
    workloads (YCSB-style). Deterministic: everything draws from a
    caller-supplied {!Engine.Prng.t}. *)

val uniform : Engine.Prng.t -> n:int -> unit -> int
(** Uniform key index in [0, n). *)

val zipfian : Engine.Prng.t -> n:int -> theta:float -> unit -> int
(** The Gray et al. zipfian generator YCSB uses; [theta] ~ 0.99 for the
    standard skew. O(n) setup, O(1) per sample. *)

val key_name : int -> string
(** Canonical fixed-width key string for an index. *)

val poisson_interarrival : Engine.Prng.t -> rate_per_sec:float -> unit -> int
(** Next interarrival gap in ns for an open-loop Poisson process. *)
