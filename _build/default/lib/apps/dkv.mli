(** Dkv: the Redis-stand-in in-memory data-structure server (§7.2,
    §7.5).

    Binary protocol inside {!Framing} messages — request
    [u8 cmd][u16 klen][key][value], response [u8 status][value].

    The server reproduces the porting story of the paper's Redis:

    - a single event loop over [wait_any] replaces epoll;
    - values live in the DMA heap: a SET on the fast path stores {e the
      popped buffer itself}, re-windowed onto the value bytes (incoming
      PUTs land directly in the store), and a GET pushes the stored
      buffer (outgoing GETs are served zero-copy) — safe without
      copies precisely because values are never updated in place and
      use-after-free protection defers frees that race with in-flight
      pushes;
    - with [persist], every SET is pushed to the append-only log and
      waited before the reply (fsync-per-SET, §7.5), and a restarted
      server replays the log into its store before serving — boot a new
      node against the crashed node's device ({!Demikernel.Boot.make}
      with [?ssd]) and no acked SET is lost. *)

type status = Ok | Not_found | Error

(** {1 Wire codec} — shared with the kernel-path baseline so both speak
    one protocol. Messages ride inside {!Framing} frames. *)

type command = Get | Set | Del

val encode_command : command -> key:string -> value:string -> string
val parse_command : string -> (command * string * string) option
val encode_response : status -> value:string -> string
val parse_response : string -> (status * string) option

val server : ?port:int -> ?persist:bool -> Demikernel.Pdpix.api -> unit

(** {1 Client} *)

type client

val client_connect : Demikernel.Pdpix.api -> Net.Addr.endpoint -> client
val get : client -> string -> status * string
val set : client -> string -> string -> status
val del : client -> string -> status
val client_close : client -> unit

val bench_client :
  dst:Net.Addr.endpoint ->
  keys:int ->
  value_size:int ->
  ops:int ->
  kind:[ `Get | `Set ] ->
  seed:int ->
  ?on_start:(unit -> unit) ->
  ?record:(int -> unit) ->
  ?on_done:(unit -> unit) ->
  Demikernel.Pdpix.api ->
  unit
(** redis-benchmark-style closed loop: uniform random keys, fixed-size
    values. [`Get] runs preload the keyspace first. *)
