open Demikernel

let op_register = 0
let op_relay = 1

let header_size = 5

let make_packet api ~session ~op payload_size =
  let b = Bytes.make (header_size + payload_size) 'r' in
  Net.Wire.set_u32 b 0 session;
  Net.Wire.set_u8 b 4 op;
  api.Pdpix.alloc_str (Bytes.unsafe_to_string b)

let server ?(port = 3478) (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Udp in
  api.Pdpix.bind qd (Net.Addr.endpoint 0 port);
  let sessions : (int, Net.Addr.endpoint) Hashtbl.t = Hashtbl.create 64 in
  let rec loop () =
    (match api.Pdpix.wait (api.Pdpix.pop qd) with
    | Pdpix.Popped_from (from, sga) -> (
        let first = match sga with b :: _ -> b | [] -> failwith "relay: empty sga" in
        let data = Memory.Heap.data first in
        let off = Memory.Heap.offset first in
        if Memory.Heap.length first < header_size then List.iter api.Pdpix.free sga
        else
          let session = Net.Wire.get_u32 data off in
          let op = Net.Wire.get_u8 data (off + 4) in
          if op = op_register then begin
            Hashtbl.replace sessions session from;
            List.iter api.Pdpix.free sga
          end
          else
            match Hashtbl.find_opt sessions session with
            | Some receiver -> (
                (* Forward the packet unchanged — zero-copy relay. *)
                match api.Pdpix.wait (api.Pdpix.pushto qd receiver sga) with
                | Pdpix.Pushed -> List.iter api.Pdpix.free sga
                | _ -> failwith "relay: forward failed")
            | None -> List.iter api.Pdpix.free sga)
    | Pdpix.Failed _ -> ()
    | _ -> failwith "relay: unexpected completion");
    loop ()
  in
  loop ()

let generator ~dst ~src_port ~session ~msg_size ~count ?record ?on_done (api : Pdpix.api) =
  let qd = api.Pdpix.socket Pdpix.Udp in
  api.Pdpix.bind qd (Net.Addr.endpoint 0 src_port);
  (* Register ourselves as the session receiver. *)
  let reg = make_packet api ~session ~op:op_register 0 in
  (match api.Pdpix.wait (api.Pdpix.pushto qd dst [ reg ]) with
  | Pdpix.Pushed -> api.Pdpix.free reg
  | _ -> failwith "relay generator: register failed");
  let payload_size = max 0 (msg_size - header_size) in
  let rec go n =
    if n > 0 then begin
      let start = api.Pdpix.clock () in
      let pkt = make_packet api ~session ~op:op_relay payload_size in
      (match api.Pdpix.wait (api.Pdpix.pushto qd dst [ pkt ]) with
      | Pdpix.Pushed -> api.Pdpix.free pkt
      | _ -> failwith "relay generator: send failed");
      (match api.Pdpix.wait (api.Pdpix.pop qd) with
      | Pdpix.Popped_from (_, sga) -> List.iter api.Pdpix.free sga
      | _ -> failwith "relay generator: pop failed");
      (match record with Some f -> f (api.Pdpix.clock () - start) | None -> ());
      go (n - 1)
    end
  in
  go count;
  match on_done with Some f -> f () | None -> ()
