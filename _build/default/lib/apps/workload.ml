let uniform prng ~n () = Engine.Prng.int prng n

(* Gray et al., "Quickly generating billion-record synthetic databases"
   (SIGMOD '94) — the generator YCSB's ZipfianGenerator implements. *)
let zipfian prng ~n ~theta =
  let zeta m =
    let rec go i acc =
      if i > m then acc else go (i + 1) (acc +. (1. /. Float.pow (float_of_int i) theta))
    in
    go 1 0.
  in
  let zetan = zeta n in
  let zeta2 = zeta 2 in
  let alpha = 1. /. (1. -. theta) in
  let eta = (1. -. Float.pow (2. /. float_of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan)) in
  fun () ->
    let u = Engine.Prng.float prng in
    let uz = u *. zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 theta then 1
    else
      let v = float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.) alpha in
      min (n - 1) (int_of_float v)

let key_name i = Printf.sprintf "user%012d" i

let poisson_interarrival prng ~rate_per_sec () =
  let mean_ns = 1e9 /. rate_per_sec in
  max 1 (int_of_float (Engine.Prng.exponential prng mean_ns))
