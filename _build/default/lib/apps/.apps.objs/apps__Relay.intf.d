lib/apps/relay.mli: Demikernel Net
