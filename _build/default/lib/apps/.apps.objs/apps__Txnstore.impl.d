lib/apps/txnstore.ml: Array Bytes Demikernel Engine Framing Hashtbl Int64 List Memory Net Pdpix String Workload
