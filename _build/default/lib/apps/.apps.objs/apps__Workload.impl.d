lib/apps/workload.ml: Engine Float Printf
