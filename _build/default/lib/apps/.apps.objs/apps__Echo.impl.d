lib/apps/echo.ml: Array Demikernel List Net Pdpix Queue String
