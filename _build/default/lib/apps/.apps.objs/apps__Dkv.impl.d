lib/apps/dkv.ml: Array Bytes Char Demikernel Engine Framing Hashtbl Int64 List Memory Net Pdpix Printf String
