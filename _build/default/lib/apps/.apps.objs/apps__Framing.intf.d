lib/apps/framing.mli: Demikernel Net
