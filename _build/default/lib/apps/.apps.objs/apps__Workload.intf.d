lib/apps/workload.mli: Engine
