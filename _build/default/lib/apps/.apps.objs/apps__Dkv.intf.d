lib/apps/dkv.mli: Demikernel Net
