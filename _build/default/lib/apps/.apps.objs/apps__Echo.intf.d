lib/apps/echo.mli: Demikernel Net
