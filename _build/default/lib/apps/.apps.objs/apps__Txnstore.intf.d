lib/apps/txnstore.mli: Demikernel Hashtbl Net
