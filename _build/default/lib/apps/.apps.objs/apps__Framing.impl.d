lib/apps/framing.ml: Buffer Bytes Demikernel List Memory Net Pdpix String
