lib/apps/relay.ml: Bytes Demikernel Hashtbl List Memory Net Pdpix
