(** Length-prefixed message framing over PDPIX byte streams.

    Catnip connections are TCP streams that re-chunk pushes; Catmint
    delivers whole messages. A 4-byte length prefix makes application
    protocols (KV store, TxnStore RPC) portable across both. *)

val encode : string -> string
(** Prefix with a u32 big-endian length. *)

type accum
(** Reassembly state for one connection. *)

val create : unit -> accum

val feed : accum -> string -> unit
(** Append received bytes. *)

val next : accum -> string option
(** Extract the next complete message, if any. *)

val buffered : accum -> int

(** {1 Blocking channel} — for client coroutines that own their
    connection outright. *)

type chan

val chan_of_qd : Demikernel.Pdpix.api -> Demikernel.Pdpix.qd -> chan

val send : chan -> string -> unit
(** Push one framed message and wait for the push completion. *)

val recv : chan -> string option
(** Block until a complete message arrives; [None] on EOF. *)

val connect : Demikernel.Pdpix.api -> Net.Addr.endpoint -> chan
(** Create + connect a TCP-proto queue and wrap it. Raises on failure. *)

val close : chan -> unit
