(** The kernel-path ("Linux") application baselines: the same workloads
    as [Apps], written against blocking POSIX-style syscalls on the
    simulated kernel (§7's "POSIX versions"). Each function spawns the
    application as a plain simulation fiber; the fiber pays syscall
    crossings, payload copies and interrupt wakeup latency on every
    I/O. The [Uring] kernel mode models io_uring's cheaper crossings
    (Figure 10). *)

val make_kernel :
  Engine.Sim.t -> Net.Fabric.t -> index:int -> ?with_disk:bool -> ?mode:Oskernel.Kernel.mode ->
  unit -> Oskernel.Kernel.t

(** {1 Echo (Figures 5-7)} *)

val echo_udp_server : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> persist:bool -> unit

val echo_udp_client :
  Engine.Sim.t ->
  Oskernel.Kernel.t ->
  dst:Net.Addr.endpoint ->
  src_port:int ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit

val echo_tcp_server : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> persist:bool -> unit

val echo_tcp_client :
  Engine.Sim.t ->
  Oskernel.Kernel.t ->
  dst:Net.Addr.endpoint ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit

(** {1 UDP relay (Figure 10)} *)

val relay_server : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> unit
(** Speaks the same datagram format as {!Apps.Relay}. *)

val relay_generator :
  Engine.Sim.t ->
  Oskernel.Kernel.t ->
  dst:Net.Addr.endpoint ->
  src_port:int ->
  session:int ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
(** The paper's Linux-based traffic generator, used against every relay
    implementation so only the server side varies (§7.4). *)

(** {1 KV store (Figure 11)} *)

val kv_server : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> persist:bool -> unit
(** Speaks the {!Apps.Dkv} protocol over kernel TCP, multiplexing
    connections with epoll-style [wait_readable]. *)

val kv_bench_client :
  Engine.Sim.t ->
  Oskernel.Kernel.t ->
  dst:Net.Addr.endpoint ->
  keys:int ->
  value_size:int ->
  ops:int ->
  kind:[ `Get | `Set ] ->
  seed:int ->
  on_start:(unit -> unit) ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
(** [on_start] fires after the preload, marking the measured window. *)

(** {1 TxnStore (Figure 12)} *)

val txn_replica : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> unit

val txn_replica_udp : Engine.Sim.t -> Oskernel.Kernel.t -> port:int -> unit

val txn_ycsb_client :
  ?transport:[ `Tcp | `Udp ] ->
  Engine.Sim.t ->
  Oskernel.Kernel.t ->
  replicas:Net.Addr.endpoint list ->
  keys:int ->
  value_size:int ->
  txns:int ->
  theta:float ->
  seed:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
