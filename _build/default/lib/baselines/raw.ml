let charge sim ns = if ns > 0 then Engine.Fiber.sleep sim ns

(* ---------- testpmd: raw DPDK L2 forwarding ---------- *)

let eth_frame ~dst ~src payload =
  let b = Bytes.create (Net.Eth.size + String.length payload) in
  let off = Net.Eth.write b 0 { Net.Eth.dst; src; ethertype = 0x88B5 (* local exp. *) } in
  Bytes.blit_string payload 0 b off (String.length payload);
  Bytes.unsafe_to_string b

let swap_macs frame =
  let b = Bytes.of_string frame in
  let dst = Net.Wire.get_u48 b 0 and src = Net.Wire.get_u48 b 6 in
  Net.Wire.set_u48 b 0 src;
  Net.Wire.set_u48 b 6 dst;
  Bytes.unsafe_to_string b

let testpmd_echo sim fabric ~server_index ~client_index ~msg_size ~count ~record ~on_done =
  let cost = Net.Fabric.cost fabric in
  let server_nic =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index server_index)
      ~ip:(Net.Addr.Ip.of_index server_index) ()
  in
  let client_nic =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index client_index)
      ~ip:(Net.Addr.Ip.of_index client_index) ()
  in
  Engine.Fiber.spawn sim ~name:"testpmd-server" (fun () ->
      let rec loop () =
        (match Net.Dpdk_sim.rx_burst server_nic ~max:32 with
        | [] ->
            ignore
              (Engine.Condvar.wait_many sim [ Net.Dpdk_sim.rx_signal server_nic ] ~timeout:None)
        | frames ->
            List.iter
              (fun frame ->
                charge sim (cost.Net.Cost.dpdk_rx_ns + cost.Net.Cost.dpdk_tx_ns);
                Net.Dpdk_sim.tx_burst server_nic [ swap_macs frame ])
              frames);
        loop ()
      in
      loop ());
  Engine.Fiber.spawn sim ~name:"testpmd-client" (fun () ->
      let payload = String.make (max 1 msg_size) 'x' in
      let frame =
        eth_frame ~dst:(Net.Dpdk_sim.mac server_nic) ~src:(Net.Dpdk_sim.mac client_nic) payload
      in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          charge sim cost.Net.Cost.dpdk_tx_ns;
          Net.Dpdk_sim.tx_burst client_nic [ frame ];
          let rec await () =
            match Net.Dpdk_sim.rx_burst client_nic ~max:1 with
            | [] ->
                ignore
                  (Engine.Condvar.wait_many sim [ Net.Dpdk_sim.rx_signal client_nic ]
                     ~timeout:None);
                await ()
            | _ -> charge sim cost.Net.Cost.dpdk_rx_ns
          in
          await ();
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())

(* ---------- perftest: raw RDMA ping-pong ---------- *)

let perftest_pingpong sim fabric ~server_index ~client_index ~msg_size ~count ~record ~on_done
    =
  let cost = Net.Fabric.cost fabric in
  let server =
    Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index server_index)
      ~ip:(Net.Addr.Ip.of_index server_index) ()
  in
  let client =
    Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index client_index)
      ~ip:(Net.Addr.Ip.of_index client_index) ()
  in
  for _ = 1 to 128 do
    Net.Rdma_sim.post_recv server;
    Net.Rdma_sim.post_recv client
  done;
  Engine.Fiber.spawn sim ~name:"perftest-server" (fun () ->
      let rec loop () =
        (match Net.Rdma_sim.poll_cq server ~max:8 with
        | [] ->
            ignore
              (Engine.Condvar.wait_many sim [ Net.Rdma_sim.cq_signal server ] ~timeout:None)
        | completions ->
            List.iter
              (fun completion ->
                charge sim cost.Net.Cost.rdma_poll_ns;
                match completion with
                | Net.Rdma_sim.Recv { src_mac; payload; _ } ->
                    Net.Rdma_sim.post_recv server;
                    charge sim cost.Net.Cost.rdma_post_ns;
                    Net.Rdma_sim.post_send server ~dst:src_mac ~wr_id:0 ~imm:0 payload
                | Net.Rdma_sim.Send_done _ | Net.Rdma_sim.Write_done _ -> ())
              completions);
        loop ()
      in
      loop ());
  Engine.Fiber.spawn sim ~name:"perftest-client" (fun () ->
      let payload = String.make (max 1 msg_size) 'p' in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          charge sim cost.Net.Cost.rdma_post_ns;
          Net.Rdma_sim.post_send client ~dst:(Net.Rdma_sim.mac server) ~wr_id:1 ~imm:0 payload;
          let got_reply = ref false in
          let rec await () =
            if not !got_reply then begin
              (match Net.Rdma_sim.poll_cq client ~max:8 with
              | [] ->
                  ignore
                    (Engine.Condvar.wait_many sim [ Net.Rdma_sim.cq_signal client ]
                       ~timeout:None)
              | completions ->
                  List.iter
                    (fun completion ->
                      charge sim cost.Net.Cost.rdma_poll_ns;
                      match completion with
                      | Net.Rdma_sim.Recv _ ->
                          Net.Rdma_sim.post_recv client;
                          got_reply := true
                      | Net.Rdma_sim.Send_done _ | Net.Rdma_sim.Write_done _ -> ())
                    completions);
              await ()
            end
          in
          await ();
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())
