type profile = {
  name : string;
  device : [ `Dpdk | `Rdma ];
  per_op_cpu_ns : int;
  per_packet_hop_ns : int;
}

(* Constants chosen to reproduce the cost structure §7.3 describes:
   eRPC is a thin, carefully tuned layer over RDMA; Caladan adds a lean
   runtime over the low-level OFED API; Shenango routes every packet
   through its IOKernel core (two inter-core hops per packet). *)
let erpc = { name = "eRPC"; device = `Rdma; per_op_cpu_ns = 160; per_packet_hop_ns = 0 }
let caladan = { name = "Caladan"; device = `Dpdk; per_op_cpu_ns = 150; per_packet_hop_ns = 0 }

let shenango =
  { name = "Shenango"; device = `Dpdk; per_op_cpu_ns = 150; per_packet_hop_ns = 1_300 }

type port = {
  mac : Net.Addr.Mac.t;
  send : dst:Net.Addr.Mac.t -> string -> unit;
  drain : (src:Net.Addr.Mac.t -> string -> unit) -> bool;
  signal : Engine.Condvar.t;
}

let charge sim ns = if ns > 0 then Engine.Fiber.sleep sim ns

let eth_frame ~dst ~src payload =
  let b = Bytes.create (Net.Eth.size + String.length payload) in
  let off = Net.Eth.write b 0 { Net.Eth.dst; src; ethertype = 0x88B5 } in
  Bytes.blit_string payload 0 b off (String.length payload);
  Bytes.unsafe_to_string b

let make_port profile sim fabric ~index =
  let cost = Net.Fabric.cost fabric in
  let mac = Net.Addr.Mac.of_index index in
  let ip = Net.Addr.Ip.of_index index in
  match profile.device with
  | `Dpdk when profile.per_packet_hop_ns > 0 ->
      (* Shenango-style: a dedicated IOKernel core (its own fiber) sits
         between the NIC and the application; every packet pays the
         inter-core hop in latency, but the hop burns the IOKernel's
         cycles, not the application core's. *)
      let nic = Net.Dpdk_sim.create fabric ~mac ~ip () in
      let mailbox : string Queue.t = Queue.create () in
      let mailbox_signal = Engine.Condvar.create sim in
      let iokernel_cpu_ns = 300 in
      Engine.Fiber.spawn sim ~name:"iokernel" (fun () ->
          let rec loop () =
            (match Net.Dpdk_sim.rx_burst nic ~max:32 with
            | [] ->
                ignore
                  (Engine.Condvar.wait_many sim [ Net.Dpdk_sim.rx_signal nic ] ~timeout:None)
            | frames ->
                List.iter
                  (fun frame ->
                    charge sim iokernel_cpu_ns;
                    Engine.Sim.schedule sim ~delay:profile.per_packet_hop_ns (fun () ->
                        Queue.add frame mailbox;
                        Engine.Condvar.broadcast mailbox_signal))
                  frames);
            loop ()
          in
          loop ());
      {
        mac;
        send =
          (fun ~dst payload ->
            charge sim (profile.per_op_cpu_ns + cost.Net.Cost.dpdk_tx_ns);
            let frame = eth_frame ~dst ~src:mac payload in
            (* Outbound packets cross the IOKernel too. *)
            Engine.Sim.schedule sim ~delay:profile.per_packet_hop_ns (fun () ->
                Net.Dpdk_sim.tx_burst nic [ frame ]));
        drain =
          (fun handler ->
            if Queue.is_empty mailbox then false
            else begin
              while not (Queue.is_empty mailbox) do
                let frame = Queue.pop mailbox in
                charge sim (profile.per_op_cpu_ns + cost.Net.Cost.dpdk_rx_ns);
                match Net.Eth.read (Bytes.unsafe_of_string frame) 0 with
                | exception Net.Wire.Malformed _ -> ()
                | eth, off ->
                    let b = Bytes.unsafe_of_string frame in
                    handler ~src:eth.Net.Eth.src
                      (Bytes.sub_string b off (Bytes.length b - off))
              done;
              true
            end);
        signal = mailbox_signal;
      }
  | `Dpdk ->
      let nic = Net.Dpdk_sim.create fabric ~mac ~ip () in
      {
        mac;
        send =
          (fun ~dst payload ->
            charge sim (profile.per_op_cpu_ns + cost.Net.Cost.dpdk_tx_ns);
            Net.Dpdk_sim.tx_burst nic [ eth_frame ~dst ~src:mac payload ]);
        drain =
          (fun handler ->
            match Net.Dpdk_sim.rx_burst nic ~max:32 with
            | [] -> false
            | frames ->
                List.iter
                  (fun frame ->
                    charge sim (profile.per_op_cpu_ns + cost.Net.Cost.dpdk_rx_ns);
                    let b = Bytes.unsafe_of_string frame in
                    match Net.Eth.read b 0 with
                    | exception Net.Wire.Malformed _ -> ()
                    | eth, off ->
                        handler ~src:eth.Net.Eth.src
                          (Bytes.sub_string b off (Bytes.length b - off)))
                  frames;
                true);
        signal = Net.Dpdk_sim.rx_signal nic;
      }
  | `Rdma ->
      let rnic = Net.Rdma_sim.create fabric ~mac ~ip () in
      for _ = 1 to 256 do
        Net.Rdma_sim.post_recv rnic
      done;
      {
        mac;
        send =
          (fun ~dst payload ->
            charge sim (profile.per_op_cpu_ns + cost.Net.Cost.rdma_post_ns);
            Net.Rdma_sim.post_send rnic ~dst ~wr_id:0 ~imm:0 payload);
        drain =
          (fun handler ->
            match Net.Rdma_sim.poll_cq rnic ~max:32 with
            | [] -> false
            | completions ->
                List.iter
                  (fun completion ->
                    match completion with
                    | Net.Rdma_sim.Recv { src_mac; payload; _ } ->
                        charge sim (profile.per_op_cpu_ns + cost.Net.Cost.rdma_poll_ns);
                        Net.Rdma_sim.post_recv rnic;
                        handler ~src:src_mac payload
                    | Net.Rdma_sim.Send_done _ | Net.Rdma_sim.Write_done _ -> ())
                  completions;
                true);
        signal = Net.Rdma_sim.cq_signal rnic;
      }

let spawn_echo_server profile sim fabric ~index =
  let port = make_port profile sim fabric ~index in
  Engine.Fiber.spawn sim ~name:(profile.name ^ "-server") (fun () ->
      let rec loop () =
        if not (port.drain (fun ~src payload -> port.send ~dst:src payload)) then
          ignore (Engine.Condvar.wait_many sim [ port.signal ] ~timeout:None);
        loop ()
      in
      loop ());
  port

let echo profile sim fabric ~server_index ~client_index ~msg_size ~count ~record ~on_done =
  let server = spawn_echo_server profile sim fabric ~index:server_index in
  let client = make_port profile sim fabric ~index:client_index in
  Engine.Fiber.spawn sim ~name:(profile.name ^ "-client") (fun () ->
      let payload = String.make (max 1 msg_size) 'k' in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          client.send ~dst:server.mac payload;
          let got = ref false in
          let rec await () =
            if not !got then begin
              if not (client.drain (fun ~src:_ _ -> got := true)) then
                ignore (Engine.Condvar.wait_many sim [ client.signal ] ~timeout:None);
              await ()
            end
          in
          await ();
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())

(* ---------- open-loop load (Figure 9) ---------- *)

type load_result = {
  offered_per_sec : float;
  achieved_per_sec : float;
  latencies : Metrics.Histogram.t;
}

let echo_open_loop profile sim fabric ~server_index ~client_index ~msg_size ~rate_per_sec
    ~duration_ns k =
  let server = spawn_echo_server profile sim fabric ~index:server_index in
  let client = make_port profile sim fabric ~index:client_index in
  Engine.Fiber.spawn sim ~name:(profile.name ^ "-loadgen") (fun () ->
      let prng = Engine.Prng.split (Engine.Sim.prng sim) in
      let hist = Metrics.Histogram.create () in
      let received = ref 0 in
      let start = Engine.Sim.now sim in
      let deadline = start + duration_ns in
      let grace = deadline + 500_000 in
      let next_send = ref start in
      let payload_tail = String.make (max 0 (msg_size - 8)) 'l' in
      let handler ~src:_ payload =
        if String.length payload >= 8 then begin
          let ts = Net.Wire.get_u48 (Bytes.unsafe_of_string payload) 0 in
          let sent_at = start + ts in
          Metrics.Histogram.add hist (Engine.Sim.now sim - sent_at);
          incr received
        end
      in
      let rec loop () =
        let now = Engine.Sim.now sim in
        if now >= grace then ()
        else begin
          if now >= !next_send && now < deadline then begin
            let b = Bytes.create 8 in
            Net.Wire.set_u48 b 0 (now - start);
            Net.Wire.set_u16 b 6 0;
            client.send ~dst:server.mac (Bytes.unsafe_to_string b ^ payload_tail);
            next_send :=
              !next_send
              + max 1 (int_of_float (Engine.Prng.exponential prng (1e9 /. rate_per_sec)))
          end
          else if not (client.drain handler) then begin
            let wake = if Engine.Sim.now sim < deadline then min !next_send grace else grace in
            ignore
              (Engine.Condvar.wait_many sim [ client.signal ]
                 ~timeout:(Some (max 1 (wake - Engine.Sim.now sim))))
          end;
          loop ()
        end
      in
      loop ();
      k
        {
          offered_per_sec = rate_per_sec;
          achieved_per_sec = float_of_int !received /. (float_of_int duration_ns /. 1e9);
          latencies = hist;
        })
