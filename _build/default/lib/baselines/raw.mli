(** The "native performance" baselines of §7.1: testpmd (an L2
    forwarder that does no packet processing) and perftest (an RDMA
    send/recv ping-pong). These bound what any datapath OS can achieve
    on each device — Figure 5's rightmost bars. *)

val testpmd_echo :
  Engine.Sim.t ->
  Net.Fabric.t ->
  server_index:int ->
  client_index:int ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
(** Raw DPDK echo: the server swaps MAC addresses and forwards; the
    client measures RTT. Fibers start when the simulation runs. *)

val perftest_pingpong :
  Engine.Sim.t ->
  Net.Fabric.t ->
  server_index:int ->
  client_index:int ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
(** Raw RDMA ping-pong over two-sided verbs. *)
