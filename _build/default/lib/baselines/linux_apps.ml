module K = Oskernel.Kernel

let make_kernel sim fabric ~index ?(with_disk = false) ?(mode = K.Posix) () =
  let cost = Net.Fabric.cost fabric in
  let nic =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index index)
      ~ip:(Net.Addr.Ip.of_index index) ()
  in
  let ssd = if with_disk then Some (Net.Ssd_sim.create sim ~cost ~capacity:(1 lsl 30)) else None in
  K.create sim ~cost ~nic ?ssd ~mode ()

(* ---------- echo ---------- *)

let echo_udp_server sim kernel ~port ~persist =
  Engine.Fiber.spawn sim ~name:"linux-udp-echo" (fun () ->
      let fd = K.udp_socket kernel ~port in
      let rec loop () =
        (match K.recvfrom kernel fd ~block:true with
        | Some (from, payload) ->
            if persist then K.append_sync kernel payload;
            K.sendto kernel fd ~dst:from payload
        | None -> ());
        loop ()
      in
      loop ())

let echo_udp_client sim kernel ~dst ~src_port ~msg_size ~count ~record ~on_done =
  Engine.Fiber.spawn sim ~name:"linux-udp-echo-client" (fun () ->
      let fd = K.udp_socket kernel ~port:src_port in
      let payload = String.make (max 1 msg_size) 'e' in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          K.sendto kernel fd ~dst payload;
          (match K.recvfrom kernel fd ~block:true with
          | Some _ -> ()
          | None -> failwith "linux echo client: no reply");
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())

let echo_tcp_server sim kernel ~port ~persist =
  Engine.Fiber.spawn sim ~name:"linux-tcp-echo" (fun () ->
      let lfd = K.tcp_listen kernel ~port in
      let fd = K.accept kernel lfd in
      let rec loop () =
        match K.recv kernel fd ~block:true with
        | Some payload ->
            if persist then K.append_sync kernel payload;
            K.send kernel fd payload;
            loop ()
        | None -> if not (K.at_eof kernel fd) then loop ()
      in
      loop ())

let echo_tcp_client sim kernel ~dst ~msg_size ~count ~record ~on_done =
  Engine.Fiber.spawn sim ~name:"linux-tcp-echo-client" (fun () ->
      let fd = K.connect kernel ~dst in
      let size = max 1 msg_size in
      let payload = String.make size 'e' in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          K.send kernel fd payload;
          let rec collect remaining =
            if remaining > 0 then
              match K.recv kernel fd ~block:true with
              | Some chunk -> collect (remaining - String.length chunk)
              | None -> failwith "linux tcp echo client: connection lost"
          in
          collect size;
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())

(* ---------- UDP relay ---------- *)

let relay_server sim kernel ~port =
  Engine.Fiber.spawn sim ~name:"linux-relay" (fun () ->
      let fd = K.udp_socket kernel ~port in
      let sessions : (int, Net.Addr.endpoint) Hashtbl.t = Hashtbl.create 64 in
      let rec loop () =
        (match K.recvfrom kernel fd ~block:true with
        | Some (from, payload) when String.length payload >= 5 ->
            let b = Bytes.unsafe_of_string payload in
            let session = Net.Wire.get_u32 b 0 in
            let op = Net.Wire.get_u8 b 4 in
            if op = 0 then Hashtbl.replace sessions session from
            else (
              match Hashtbl.find_opt sessions session with
              | Some receiver -> K.sendto kernel fd ~dst:receiver payload
              | None -> ())
        | Some _ | None -> ());
        loop ()
      in
      loop ())

let relay_generator sim kernel ~dst ~src_port ~session ~msg_size ~count ~record ~on_done =
  Engine.Fiber.spawn sim ~name:"linux-relay-generator" (fun () ->
      let fd = K.udp_socket kernel ~port:src_port in
      let packet op =
        let b = Bytes.make (max 5 msg_size) 'g' in
        Net.Wire.set_u32 b 0 session;
        Net.Wire.set_u8 b 4 op;
        Bytes.unsafe_to_string b
      in
      K.sendto kernel fd ~dst (String.sub (packet 0) 0 5) (* register *);
      let payload = packet 1 in
      let rec go n =
        if n > 0 then begin
          let start = Engine.Sim.now sim in
          K.sendto kernel fd ~dst payload;
          (match K.recvfrom kernel fd ~block:true with
          | Some _ -> ()
          | None -> failwith "relay generator: no relayed packet");
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go count;
      on_done ())

(* ---------- KV store ---------- *)

let kv_server sim kernel ~port ~persist =
  Engine.Fiber.spawn sim ~name:"linux-kv" (fun () ->
      let lfd = K.tcp_listen kernel ~port in
      let store : (string, string) Hashtbl.t = Hashtbl.create 1024 in
      let conns : (K.fd * Apps.Framing.accum) list ref = ref [] in
      let handle fd msg =
        let response =
          match Apps.Dkv.parse_command msg with
          | Some (Apps.Dkv.Get, key, _) -> (
              match Hashtbl.find_opt store key with
              | Some value -> Apps.Dkv.encode_response Apps.Dkv.Ok ~value
              | None -> Apps.Dkv.encode_response Apps.Dkv.Not_found ~value:"")
          | Some (Apps.Dkv.Set, key, value) ->
              if persist then K.append_sync kernel msg;
              Hashtbl.replace store key value;
              Apps.Dkv.encode_response Apps.Dkv.Ok ~value:""
          | Some (Apps.Dkv.Del, key, _) ->
              if Hashtbl.mem store key then begin
                Hashtbl.remove store key;
                Apps.Dkv.encode_response Apps.Dkv.Ok ~value:""
              end
              else Apps.Dkv.encode_response Apps.Dkv.Not_found ~value:""
          | None -> Apps.Dkv.encode_response Apps.Dkv.Error ~value:""
        in
        K.send kernel fd (Apps.Framing.encode response)
      in
      (* epoll event loop: one wait, then syscalls only on ready fds. *)
      let rec loop () =
        K.wait_readable kernel (lfd :: List.map fst !conns);
        (if K.ready kernel lfd then
           match K.try_accept kernel lfd with
           | Some fd -> conns := (fd, Apps.Framing.create ()) :: !conns
           | None -> ());
        List.iter
          (fun (fd, acc) ->
            if K.ready kernel fd then
              match K.recv kernel fd ~block:false with
              | Some chunk ->
                  Apps.Framing.feed acc chunk;
                  let rec drain () =
                    match Apps.Framing.next acc with
                    | Some msg ->
                        handle fd msg;
                        drain ()
                    | None -> ()
                  in
                  drain ()
              | None -> ())
          !conns;
        loop ()
      in
      loop ())

(* Blocking framed receive over a kernel TCP connection. *)
let recv_framed kernel fd acc =
  let rec go () =
    match Apps.Framing.next acc with
    | Some msg -> Some msg
    | None -> (
        match K.recv kernel fd ~block:true with
        | Some chunk ->
            Apps.Framing.feed acc chunk;
            go ()
        | None -> if K.at_eof kernel fd then None else go ())
  in
  go ()

let kv_bench_client sim kernel ~dst ~keys ~value_size ~ops ~kind ~seed ~on_start ~record
    ~on_done =
  Engine.Fiber.spawn sim ~name:"linux-kv-client" (fun () ->
      let fd = K.connect kernel ~dst in
      let acc = Apps.Framing.create () in
      let prng = Engine.Prng.create (Int64.of_int seed) in
      let value = String.make value_size 'v' in
      let key_of i = Printf.sprintf "key:%012d" i in
      let roundtrip cmd key value =
        K.send kernel fd (Apps.Framing.encode (Apps.Dkv.encode_command cmd ~key ~value));
        match recv_framed kernel fd acc with
        | Some resp -> Apps.Dkv.parse_response resp
        | None -> None
      in
      (if kind = `Get then
         for i = 0 to keys - 1 do
           ignore (roundtrip Apps.Dkv.Set (key_of i) value)
         done);
      on_start ();
      let rec go n =
        if n > 0 then begin
          let key = key_of (Engine.Prng.int prng keys) in
          let start = Engine.Sim.now sim in
          (match kind with
          | `Get -> ignore (roundtrip Apps.Dkv.Get key "")
          | `Set -> ignore (roundtrip Apps.Dkv.Set key value));
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go ops;
      on_done ())

(* ---------- TxnStore ---------- *)

let txn_replica sim kernel ~port =
  Engine.Fiber.spawn sim ~name:"linux-txn-replica" (fun () ->
      let lfd = K.tcp_listen kernel ~port in
      let fd = K.accept kernel lfd in
      let store : (string, int * string) Hashtbl.t = Hashtbl.create 1024 in
      let acc = Apps.Framing.create () in
      let rec loop () =
        match recv_framed kernel fd acc with
        | Some msg ->
            K.send kernel fd (Apps.Framing.encode (Apps.Txnstore.handle_request ~store msg));
            loop ()
        | None -> ()
      in
      loop ())

let txn_replica_udp sim kernel ~port =
  Engine.Fiber.spawn sim ~name:"linux-txn-replica-udp" (fun () ->
      let fd = K.udp_socket kernel ~port in
      let store : (string, int * string) Hashtbl.t = Hashtbl.create 1024 in
      let rec loop () =
        (match K.recvfrom kernel fd ~block:true with
        | Some (from, msg) ->
            K.sendto kernel fd ~dst:from (Apps.Txnstore.handle_request ~store msg)
        | None -> ());
        loop ()
      in
      loop ())

let txn_ycsb_client ?(transport = `Tcp) sim kernel ~replicas ~keys ~value_size ~txns ~theta
    ~seed ~record ~on_done =
  Engine.Fiber.spawn sim ~name:"linux-txn-client" (fun () ->
      let replica_arr = Array.of_list replicas in
      let tcp_conns =
        match transport with
        | `Tcp ->
            Some
              (Array.map (fun dst -> (K.connect kernel ~dst, Apps.Framing.create ())) replica_arr)
        | `Udp -> None
      in
      let udp_fd =
        match transport with `Udp -> Some (K.udp_socket kernel ~port:5999) | `Tcp -> None
      in
      let prng = Engine.Prng.create (Int64.of_int seed) in
      let next_key = Apps.Workload.zipfian prng ~n:keys ~theta in
      let value = String.make value_size 'w' in
      let rr = ref 0 in
      let rpc_one i msg =
        match (tcp_conns, udp_fd) with
        | Some conns, _ ->
            let fd, acc = conns.(i) in
            K.send kernel fd (Apps.Framing.encode msg);
            recv_framed kernel fd acc
        | None, Some fd -> (
            K.sendto kernel fd ~dst:replica_arr.(i) msg;
            match K.recvfrom kernel fd ~block:true with
            | Some (_, resp) -> Some resp
            | None -> None)
        | None, None -> assert false
      in
      let get key =
        let i = !rr mod Array.length replica_arr in
        incr rr;
        match rpc_one i (Apps.Txnstore.encode_get key) with
        | Some resp -> Apps.Txnstore.parse_get_response resp
        | None -> None
      in
      let put key ~version v =
        let msg = Apps.Txnstore.encode_put key ~version v in
        match (tcp_conns, udp_fd) with
        | Some conns, _ ->
            Array.iter (fun (fd, _) -> K.send kernel fd (Apps.Framing.encode msg)) conns;
            Array.iter (fun (fd, acc) -> ignore (recv_framed kernel fd acc)) conns
        | None, Some fd ->
            (* Overlap the three replications: all sends, then all acks. *)
            Array.iter (fun dst -> K.sendto kernel fd ~dst msg) replica_arr;
            Array.iter (fun _ -> ignore (K.recvfrom kernel fd ~block:true)) replica_arr
        | None, None -> assert false
      in
      for i = 0 to keys - 1 do
        put (Apps.Workload.key_name i) ~version:1 value
      done;
      let rec go n =
        if n > 0 then begin
          let key = Apps.Workload.key_name (next_key ()) in
          let start = Engine.Sim.now sim in
          let version = match get key with Some (v, _) -> v | None -> 0 in
          put key ~version:(version + 1) value;
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go txns;
      on_done ())
