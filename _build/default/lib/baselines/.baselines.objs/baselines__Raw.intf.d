lib/baselines/raw.mli: Engine Net
