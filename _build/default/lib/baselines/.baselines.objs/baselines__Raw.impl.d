lib/baselines/raw.ml: Bytes Engine List Net String
