lib/baselines/kb_lib.ml: Bytes Engine List Metrics Net Queue String
