lib/baselines/linux_apps.ml: Apps Array Bytes Engine Hashtbl Int64 List Net Oskernel Printf String
