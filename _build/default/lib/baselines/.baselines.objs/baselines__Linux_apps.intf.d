lib/baselines/linux_apps.mli: Engine Net Oskernel
