lib/baselines/kb_lib.mli: Engine Metrics Net
