lib/baselines/txn_rdma.ml: Apps Array Engine Fun Hashtbl Int64 List Net String
