lib/baselines/txn_rdma.mli: Engine Net
