(** Models of the recent kernel-bypass libraries the paper compares
    against (§7.1): eRPC (run-to-completion RPC over RDMA with a custom
    transport), Shenango (DPDK with a dedicated IOKernel core that every
    packet traverses), and Caladan (single-core run-to-completion on the
    low-level OFED API). Each is an echo system with the cost structure
    that distinguishes its architecture; the structure — not absolute
    constants — produces the Figure 5/9 orderings. *)

type profile = {
  name : string;
  device : [ `Dpdk | `Rdma ];
  per_op_cpu_ns : int;  (** library CPU per send or receive operation. *)
  per_packet_hop_ns : int;
      (** extra per-direction latency (e.g. the IOKernel core hop). *)
}

val erpc : profile
val shenango : profile
val caladan : profile

val echo :
  profile ->
  Engine.Sim.t ->
  Net.Fabric.t ->
  server_index:int ->
  client_index:int ->
  msg_size:int ->
  count:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
(** Closed-loop echo RTTs (Figure 5). *)

type load_result = {
  offered_per_sec : float;
  achieved_per_sec : float;
  latencies : Metrics.Histogram.t;
}

val echo_open_loop :
  profile ->
  Engine.Sim.t ->
  Net.Fabric.t ->
  server_index:int ->
  client_index:int ->
  msg_size:int ->
  rate_per_sec:float ->
  duration_ns:int ->
  (load_result -> unit) ->
  unit
(** Open-loop echo at an offered rate; the callback receives the
    measured throughput and latency distribution when the run ends
    (Figure 9). *)
