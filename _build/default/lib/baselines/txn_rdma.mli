(** TxnStore's custom RDMA messaging stack (§7.6's "RDMA" bars).

    The paper notes this hand-written stack uses one queue pair per
    connection, copies on both sides (no zero-copy coordination), and
    carries other inefficiencies — which is why Catmint beats it despite
    being portable. We model it as RPC over the raw RDMA device with a
    payload copy per send and per receive plus per-operation overhead
    for its QP-per-connection design. *)

val replica : Engine.Sim.t -> Net.Fabric.t -> index:int -> unit
(** Spawns one replica; request/response bodies are the
    {!Apps.Txnstore} codec. *)

val ycsb_client :
  Engine.Sim.t ->
  Net.Fabric.t ->
  index:int ->
  replica_indexes:int list ->
  keys:int ->
  value_size:int ->
  txns:int ->
  theta:float ->
  seed:int ->
  record:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit
