(* Per-operation CPU beyond the raw verbs: QP-per-connection cache
   pressure and bookkeeping (the §6.2/§7.6 inefficiencies). *)
let qp_overhead_ns = 500

let charge sim ns = if ns > 0 then Engine.Fiber.sleep sim ns

let copy_cost cost payload = Net.Cost.copy_cost_ns cost (String.length payload)

let make_rnic fabric ~index =
  let rnic =
    Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index index)
      ~ip:(Net.Addr.Ip.of_index index) ()
  in
  for _ = 1 to 256 do
    Net.Rdma_sim.post_recv rnic
  done;
  rnic

let replica sim fabric ~index =
  let cost = Net.Fabric.cost fabric in
  let rnic = make_rnic fabric ~index in
  let store : (string, int * string) Hashtbl.t = Hashtbl.create 1024 in
  Engine.Fiber.spawn sim ~name:"txn-rdma-replica" (fun () ->
      let rec loop () =
        (match Net.Rdma_sim.poll_cq rnic ~max:16 with
        | [] ->
            ignore (Engine.Condvar.wait_many sim [ Net.Rdma_sim.cq_signal rnic ] ~timeout:None)
        | completions ->
            List.iter
              (fun completion ->
                match completion with
                | Net.Rdma_sim.Recv { src_mac; imm; payload } ->
                    Net.Rdma_sim.post_recv rnic;
                    (* Copy in, process, copy out. *)
                    charge sim
                      (cost.Net.Cost.rdma_poll_ns + qp_overhead_ns + copy_cost cost payload);
                    let response = Apps.Txnstore.handle_request ~store payload in
                    charge sim
                      (cost.Net.Cost.rdma_post_ns + qp_overhead_ns + copy_cost cost response);
                    Net.Rdma_sim.post_send rnic ~dst:src_mac ~wr_id:0 ~imm response
                | Net.Rdma_sim.Send_done _ | Net.Rdma_sim.Write_done _ -> ())
              completions);
        loop ()
      in
      loop ())

let ycsb_client sim fabric ~index ~replica_indexes ~keys ~value_size ~txns ~theta ~seed ~record
    ~on_done =
  let cost = Net.Fabric.cost fabric in
  let rnic = make_rnic fabric ~index in
  let replicas = Array.of_list (List.map Net.Addr.Mac.of_index replica_indexes) in
  Engine.Fiber.spawn sim ~name:"txn-rdma-client" (fun () ->
      let prng = Engine.Prng.create (Int64.of_int seed) in
      let next_key = Apps.Workload.zipfian prng ~n:keys ~theta in
      let value = String.make value_size 'w' in
      let next_rpc = ref 1 in
      (* Send one request per listed replica, then collect the matching
         responses (request ids ride the imm field). *)
      let rpc_many targets msg =
        let ids =
          List.map
            (fun target ->
              let id = !next_rpc in
              next_rpc := !next_rpc + 1;
              charge sim (cost.Net.Cost.rdma_post_ns + qp_overhead_ns + copy_cost cost msg);
              Net.Rdma_sim.post_send rnic ~dst:replicas.(target) ~wr_id:0 ~imm:id msg;
              id)
            targets
        in
        let pending = ref ids in
        let responses = ref [] in
        let rec await () =
          if !pending <> [] then begin
            (match Net.Rdma_sim.poll_cq rnic ~max:16 with
            | [] ->
                ignore
                  (Engine.Condvar.wait_many sim [ Net.Rdma_sim.cq_signal rnic ] ~timeout:None)
            | completions ->
                List.iter
                  (fun completion ->
                    match completion with
                    | Net.Rdma_sim.Recv { imm; payload; _ } ->
                        Net.Rdma_sim.post_recv rnic;
                        charge sim
                          (cost.Net.Cost.rdma_poll_ns + qp_overhead_ns
                         + copy_cost cost payload);
                        if List.mem imm !pending then begin
                          pending := List.filter (fun i -> i <> imm) !pending;
                          responses := payload :: !responses
                        end
                    | Net.Rdma_sim.Send_done _ | Net.Rdma_sim.Write_done _ -> ())
                  completions);
            await ()
          end
        in
        await ();
        !responses
      in
      let rr = ref 0 in
      let all = List.init (Array.length replicas) Fun.id in
      let get key =
        let target = !rr mod Array.length replicas in
        incr rr;
        match rpc_many [ target ] (Apps.Txnstore.encode_get key) with
        | [ resp ] -> Apps.Txnstore.parse_get_response resp
        | _ -> None
      in
      let put key ~version v =
        ignore (rpc_many all (Apps.Txnstore.encode_put key ~version v))
      in
      for i = 0 to keys - 1 do
        put (Apps.Workload.key_name i) ~version:1 value
      done;
      let rec go n =
        if n > 0 then begin
          let key = Apps.Workload.key_name (next_key ()) in
          let start = Engine.Sim.now sim in
          let version = match get key with Some (v, _) -> v | None -> 0 in
          put key ~version:(version + 1) value;
          record (Engine.Sim.now sim - start);
          go (n - 1)
        end
      in
      go txns;
      on_done ())
