exception Malformed of string

let fail msg = raise (Malformed msg)

let need b off n =
  if off < 0 || off + n > Bytes.length b then fail "truncated"

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = (get_u8 b off lsl 8) lor get_u8 b (off + 1)

let set_u16 b off v =
  set_u8 b off (v lsr 8);
  set_u8 b (off + 1) v

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let set_u32 b off v =
  set_u16 b off ((v lsr 16) land 0xffff);
  set_u16 b (off + 2) (v land 0xffff)

let get_u48 b off = (get_u16 b off lsl 32) lor get_u32 b (off + 2)

let set_u48 b off v =
  set_u16 b off ((v lsr 32) land 0xffff);
  set_u32 b (off + 2) (v land 0xffff_ffff)

let fold_ones_complement sum =
  let rec fold s = if s > 0xffff then fold ((s land 0xffff) + (s lsr 16)) else s in
  fold sum

let checksum ?(init = 0) b off len =
  let sum = ref init in
  let last = off + len in
  let i = ref off in
  while !i + 1 < last do
    sum := !sum + get_u16 b !i;
    i := !i + 2
  done;
  if !i < last then sum := !sum + (get_u8 b !i lsl 8);
  lnot (fold_ones_complement !sum) land 0xffff

let pseudo_sum ~src ~dst ~proto ~len =
  ((src lsr 16) land 0xffff)
  + (src land 0xffff)
  + ((dst lsr 16) land 0xffff)
  + (dst land 0xffff)
  + proto + len
