type t = {
  profile_name : string;
  switch_ns : int;
  propagation_ns : int;
  ns_per_byte : float;
  nic_hw_ns : int;
  dpdk_tx_ns : int;
  dpdk_rx_ns : int;
  rdma_post_ns : int;
  rdma_poll_ns : int;
  rdma_hw_ns : int;
  ssd_submit_ns : int;
  ssd_write_ns : int;
  ssd_read_ns : int;
  ssd_ns_per_byte : float;
  syscall_ns : int;
  kernel_net_ns : int;
  kernel_wakeup_ns : int;
  kernel_file_ns : int;
  copy_ns_per_byte : float;
  copy_base_ns : int;
  libos_poll_ns : int;
  coroutine_switch_ns : int;
  libos_sched_ns : int;
  tcp_rx_ns : int;
  tcp_tx_ns : int;
  tcp_push_ns : int;
  udp_rx_ns : int;
  udp_tx_ns : int;
  alloc_ns : int;
  vnet_ns : int;
}

(* Calibrated so the component sums land on the raw numbers §7.3
   reports: raw RDMA echo ~3.4us, raw DPDK ~4.8us, kernel UDP ~30us,
   Catnap ~17us. *)
let bare_metal =
  {
    profile_name = "linux-bare-metal";
    switch_ns = 450;
    propagation_ns = 100;
    ns_per_byte = 0.08 (* 100 Gbps *);
    nic_hw_ns = 800;
    dpdk_tx_ns = 100;
    dpdk_rx_ns = 90;
    rdma_post_ns = 150;
    rdma_poll_ns = 140;
    rdma_hw_ns = 450;
    ssd_submit_ns = 300;
    ssd_write_ns = 12_000;
    ssd_read_ns = 10_000;
    ssd_ns_per_byte = 0.4 (* ~2.5 GB/s *);
    syscall_ns = 600;
    kernel_net_ns = 3_200;
    kernel_wakeup_ns = 5_200;
    kernel_file_ns = 30_000;
    copy_ns_per_byte = 0.05 (* ~20 GB/s *);
    copy_base_ns = 30;
    libos_poll_ns = 35;
    coroutine_switch_ns = 5 (* ~12 cycles *);
    libos_sched_ns = 45;
    tcp_rx_ns = 53 (* §6.3 *);
    tcp_tx_ns = 180;
    tcp_push_ns = 300;
    udp_rx_ns = 90;
    udp_tx_ns = 160;
    alloc_ns = 20;
    vnet_ns = 0;
  }

let windows =
  {
    bare_metal with
    profile_name = "windows-wsl";
    (* CX-4 56 Gbps + Infiniband switch (200 ns minimum). *)
    switch_ns = 200;
    ns_per_byte = 0.143;
    (* WSL translates POSIX calls; crossings and wakeups are far more
       expensive than native Linux (§7.3: Catpaw cuts latency 27x). *)
    syscall_ns = 4_000;
    kernel_net_ns = 14_000;
    kernel_wakeup_ns = 22_000;
    kernel_file_ns = 60_000;
  }

let azure_vm =
  {
    bare_metal with
    profile_name = "azure-vm";
    (* DPDK frames traverse the SmartNIC vnet translation layer; RDMA
       VMs are bare-metal Infiniband so rdma costs stay unchanged. *)
    vnet_ns = 2_600;
    (* Virtualized interrupts make the kernel path worse. *)
    kernel_wakeup_ns = 9_000;
    kernel_net_ns = 3_800;
    switch_ns = 450;
  }

let serialization_ns t n = int_of_float (ceil (float_of_int n *. t.ns_per_byte))

let copy_cost_ns t n = t.copy_base_ns + int_of_float (ceil (float_of_int n *. t.copy_ns_per_byte))

let ssd_op_ns t ~write n =
  let base = if write then t.ssd_write_ns else t.ssd_read_ns in
  base + int_of_float (ceil (float_of_int n *. t.ssd_ns_per_byte))

let pp fmt t =
  Format.fprintf fmt
    "profile=%s switch=%dns prop=%dns wire=%.3fns/B nic_hw=%dns dpdk_tx=%dns dpdk_rx=%dns \
     rdma_post=%dns rdma_poll=%dns rdma_hw=%dns ssd_submit=%dns ssd_write=%dns ssd_read=%dns \
     syscall=%dns knet=%dns kwake=%dns kfile=%dns copy=%.3fns/B+%dns poll=%dns coswitch=%dns \
     sched=%dns tcp_rx=%dns tcp_tx=%dns+%dns/push udp_rx=%dns udp_tx=%dns alloc=%dns vnet=%dns"
    t.profile_name t.switch_ns t.propagation_ns t.ns_per_byte t.nic_hw_ns t.dpdk_tx_ns
    t.dpdk_rx_ns t.rdma_post_ns t.rdma_poll_ns t.rdma_hw_ns t.ssd_submit_ns t.ssd_write_ns
    t.ssd_read_ns t.syscall_ns t.kernel_net_ns t.kernel_wakeup_ns t.kernel_file_ns
    t.copy_ns_per_byte t.copy_base_ns t.libos_poll_ns t.coroutine_switch_ns t.libos_sched_ns
    t.tcp_rx_ns t.tcp_tx_ns t.tcp_push_ns t.udp_rx_ns t.udp_tx_ns t.alloc_ns t.vnet_ns
