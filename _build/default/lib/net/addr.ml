module Mac = struct
  type t = int

  let broadcast = 0xFFFF_FFFF_FFFF
  let of_index i = 0x0200_0000_0000 lor (i + 1)
  let is_broadcast t = t = broadcast

  let pp fmt t =
    Format.fprintf fmt "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xff)
      ((t lsr 32) land 0xff) ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)
end

module Ip = struct
  type t = int

  let of_octets a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
  let of_index i = of_octets 10 0 ((i + 1) lsr 8) ((i + 1) land 0xff)

  let pp fmt t =
    Format.fprintf fmt "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
      ((t lsr 8) land 0xff) (t land 0xff)
end

type endpoint = { ip : Ip.t; port : int }

let endpoint ip port = { ip; port }
let pp_endpoint fmt { ip; port } = Format.fprintf fmt "%a:%d" Ip.pp ip port
