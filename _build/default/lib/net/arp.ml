type operation = Request | Reply

type packet = {
  operation : operation;
  sender_mac : Addr.Mac.t;
  sender_ip : Addr.Ip.t;
  target_mac : Addr.Mac.t;
  target_ip : Addr.Ip.t;
}

let size = 28

let write b off p =
  Wire.need b off size;
  Wire.set_u16 b off 1 (* htype: ethernet *);
  Wire.set_u16 b (off + 2) Eth.ethertype_ipv4;
  Wire.set_u8 b (off + 4) 6 (* hlen *);
  Wire.set_u8 b (off + 5) 4 (* plen *);
  Wire.set_u16 b (off + 6) (match p.operation with Request -> 1 | Reply -> 2);
  Wire.set_u48 b (off + 8) p.sender_mac;
  Wire.set_u32 b (off + 14) p.sender_ip;
  Wire.set_u48 b (off + 18) p.target_mac;
  Wire.set_u32 b (off + 24) p.target_ip;
  off + size

let read b off =
  Wire.need b off size;
  if Wire.get_u16 b off <> 1 then Wire.fail "arp: bad htype";
  if Wire.get_u16 b (off + 2) <> Eth.ethertype_ipv4 then Wire.fail "arp: bad ptype";
  let operation =
    match Wire.get_u16 b (off + 6) with
    | 1 -> Request
    | 2 -> Reply
    | _ -> Wire.fail "arp: bad operation"
  in
  let sender_mac = Wire.get_u48 b (off + 8) in
  let sender_ip = Wire.get_u32 b (off + 14) in
  let target_mac = Wire.get_u48 b (off + 18) in
  let target_ip = Wire.get_u32 b (off + 24) in
  ({ operation; sender_mac; sender_ip; target_mac; target_ip }, off + size)
