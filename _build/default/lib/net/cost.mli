(** The cost model: every nanosecond the simulator charges comes from
    this record, so experiments can print exactly what they assumed and
    ablations can vary one term at a time.

    Host-CPU terms are charged by the software layers (libOSes, the
    legacy-kernel path) as virtual-time sleeps on the host's fiber;
    device and wire terms are event latencies inside the device and
    fabric models. Values are calibrated against the component costs the
    paper reports (e.g. raw RDMA echo ≈ 3.4 µs RTT, raw DPDK ≈ 4.8 µs,
    kernel UDP ≈ 30 µs, §7.3). *)

type t = {
  profile_name : string;
  (* --- wire and switch --- *)
  switch_ns : int;  (** per-hop switching latency (Arista: 450 ns). *)
  propagation_ns : int;  (** cable + PHY, one way. *)
  ns_per_byte : float;  (** serialization at link rate (100 Gbps = 0.08). *)
  (* --- DPDK-style NIC --- *)
  nic_hw_ns : int;  (** NIC hardware pipeline, per packet, each way. *)
  dpdk_tx_ns : int;  (** CPU cost of rte_tx_burst per packet. *)
  dpdk_rx_ns : int;  (** CPU cost of an rte_rx_burst poll. *)
  (* --- RDMA-style NIC --- *)
  rdma_post_ns : int;  (** CPU cost of posting a work request. *)
  rdma_poll_ns : int;  (** CPU cost of polling the completion queue. *)
  rdma_hw_ns : int;
      (** device-side transport processing (ordering, reliability,
          congestion control), per message, each way. *)
  (* --- SPDK-style SSD --- *)
  ssd_submit_ns : int;  (** CPU cost of queueing an NVMe command. *)
  ssd_write_ns : int;  (** device latency for a write, base. *)
  ssd_read_ns : int;  (** device latency for a read, base. *)
  ssd_ns_per_byte : float;  (** device transfer time. *)
  (* --- legacy kernel path --- *)
  syscall_ns : int;  (** one user/kernel crossing, each way. *)
  kernel_net_ns : int;  (** kernel network stack, per packet, each way. *)
  kernel_wakeup_ns : int;
      (** interrupt + scheduler wakeup latency for a blocked reader
          (epoll/read); polling paths (Catnap) never pay it. *)
  kernel_file_ns : int;  (** VFS + file system, per write/fsync pair. *)
  copy_ns_per_byte : float;  (** CPU copy cost (memcpy at ~20 GB/s). *)
  copy_base_ns : int;  (** fixed cost per copy call. *)
  (* --- Demikernel datapath --- *)
  libos_poll_ns : int;  (** fast-path coroutine poll iteration. *)
  coroutine_switch_ns : int;  (** scheduler context switch (§5.4: ~12 cycles ≈ 5 ns). *)
  libos_sched_ns : int;  (** waker-block scan + queue bookkeeping per dispatch. *)
  tcp_rx_ns : int;  (** Catnip software TCP receive processing (§6.3: ≈53 ns). *)
  tcp_tx_ns : int;  (** Catnip TCP transmit processing, per segment. *)
  tcp_push_ns : int;  (** fixed per-push TCP cost (socket lookup, qtoken). *)
  udp_rx_ns : int;
  udp_tx_ns : int;
  alloc_ns : int;  (** DMA-heap allocation fast path. *)
  (* --- virtualization (Azure profile) --- *)
  vnet_ns : int;  (** SmartNIC vnet translation per packet (0 on bare metal). *)
}

val bare_metal : t
(** The Linux testbed of §7.1: CX-5 100 Gbps NICs, Arista switch,
    Optane SSDs. *)

val windows : t
(** The Windows/WSL cluster of §7.1: CX-4 56 Gbps, Infiniband switch
    (200 ns), much slower WSL syscalls. *)

val azure_vm : t
(** Azure VM profile: DPDK pays SmartNIC vnet translation; RDMA runs
    bare metal over Infiniband; kernel path pays virtualization too. *)

val serialization_ns : t -> int -> int
(** Wire serialization time for a frame of [n] bytes. *)

val copy_cost_ns : t -> int -> int
(** CPU cost of copying [n] bytes. *)

val ssd_op_ns : t -> write:bool -> int -> int
(** Device latency for an [n]-byte read or write. *)

val pp : Format.formatter -> t -> unit
(** One-line-per-field dump so experiments can record their profile. *)
