(** ARP for IPv4-over-Ethernet (RFC 826), request/reply only. *)

type operation = Request | Reply

type packet = {
  operation : operation;
  sender_mac : Addr.Mac.t;
  sender_ip : Addr.Ip.t;
  target_mac : Addr.Mac.t;
  target_ip : Addr.Ip.t;
}

val size : int
(** 28 bytes. *)

val write : Bytes.t -> int -> packet -> int
val read : Bytes.t -> int -> packet * int
