type header = {
  total_length : int;
  identification : int;
  ttl : int;
  protocol : int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
  more_fragments : bool;
  fragment_offset : int;
}

let whole ~total_length ~protocol ~src ~dst ~identification =
  {
    total_length;
    identification;
    ttl = 64;
    protocol;
    src;
    dst;
    more_fragments = false;
    fragment_offset = 0;
  }

let fragment_of ~total_length ~protocol ~src ~dst ~identification ~more_fragments
    ~fragment_offset =
  {
    total_length;
    identification;
    ttl = 64;
    protocol;
    src;
    dst;
    more_fragments;
    fragment_offset;
  }

let size = 20
let protocol_udp = 17
let protocol_tcp = 6

let write b off h =
  Wire.need b off size;
  Wire.set_u8 b off 0x45 (* v4, ihl 5 *);
  Wire.set_u8 b (off + 1) 0 (* dscp/ecn *);
  Wire.set_u16 b (off + 2) h.total_length;
  Wire.set_u16 b (off + 4) h.identification;
  assert (h.fragment_offset mod 8 = 0);
  Wire.set_u16 b (off + 6)
    ((if h.more_fragments then 0x2000 else 0) lor (h.fragment_offset / 8));
  Wire.set_u8 b (off + 8) h.ttl;
  Wire.set_u8 b (off + 9) h.protocol;
  Wire.set_u16 b (off + 10) 0;
  Wire.set_u32 b (off + 12) h.src;
  Wire.set_u32 b (off + 16) h.dst;
  let csum = Wire.checksum b off size in
  Wire.set_u16 b (off + 10) csum;
  off + size

let read b off =
  Wire.need b off size;
  let vi = Wire.get_u8 b off in
  if vi <> 0x45 then Wire.fail "ipv4: bad version/ihl";
  if Wire.checksum b off size <> 0 then Wire.fail "ipv4: bad checksum";
  let total_length = Wire.get_u16 b (off + 2) in
  if total_length < size then Wire.fail "ipv4: bad total length";
  let identification = Wire.get_u16 b (off + 4) in
  let frag = Wire.get_u16 b (off + 6) in
  let more_fragments = frag land 0x2000 <> 0 in
  let fragment_offset = (frag land 0x1fff) * 8 in
  let ttl = Wire.get_u8 b (off + 8) in
  if ttl = 0 then Wire.fail "ipv4: ttl expired";
  let protocol = Wire.get_u8 b (off + 9) in
  let src = Wire.get_u32 b (off + 12) in
  let dst = Wire.get_u32 b (off + 16) in
  ( { total_length; identification; ttl; protocol; src; dst; more_fragments; fragment_offset },
    off + size )
