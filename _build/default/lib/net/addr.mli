(** Link- and network-layer addresses.

    MAC addresses and IPv4 addresses are small integers in the
    simulator; the wire formats still carry them at their real widths
    (48 and 32 bits) so header layouts match the RFCs. *)

module Mac : sig
  type t = int
  (** 48-bit address in the low bits of an int. *)

  val broadcast : t
  val of_index : int -> t
  (** Deterministic unicast address for host [i] (locally administered). *)

  val is_broadcast : t -> bool
  val pp : Format.formatter -> t -> unit
end

module Ip : sig
  type t = int
  (** 32-bit IPv4 address. *)

  val of_index : int -> t
  (** 10.0.0.[i+1] style address for host [i]. *)

  val of_octets : int -> int -> int -> int -> t
  val pp : Format.formatter -> t -> unit
end

type endpoint = { ip : Ip.t; port : int }
(** A transport endpoint (IPv4 address, UDP/TCP port). *)

val endpoint : Ip.t -> int -> endpoint
val pp_endpoint : Format.formatter -> endpoint -> unit
