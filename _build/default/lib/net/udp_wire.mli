(** UDP headers (RFC 768), with pseudo-header checksum. *)

type header = { src_port : int; dst_port : int; length : int (** incl. header *) }

val size : int
(** 8 bytes. *)

val write : Bytes.t -> int -> header -> src_ip:Addr.Ip.t -> dst_ip:Addr.Ip.t -> int
(** Serialize at an offset. The payload ([length - 8] bytes) must
    already be in place after the header so the checksum can cover it. *)

val read : Bytes.t -> int -> src_ip:Addr.Ip.t -> dst_ip:Addr.Ip.t -> header * int
(** Parse and verify the checksum over header and payload. *)
