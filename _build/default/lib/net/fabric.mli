(** The datacenter network fabric: every host NIC attaches to one
    switch. The fabric charges wire serialization (per-port transmit
    queueing at link rate), propagation and switching latency, and can
    drop or corrupt frames deterministically for fault-injection tests.

    Frames are the serialized bytes produced by the wire codecs; the
    destination is taken from the Ethernet header, so the fabric behaves
    like a learning switch with a full table. *)

type t

type port

type stats = {
  frames_delivered : int;
  frames_dropped : int;
  bytes_carried : int;
}

val create : Engine.Sim.t -> cost:Cost.t -> ?loss:float -> ?corrupt:float -> unit -> t
(** [loss] is an i.i.d. frame-drop probability (default 0) applied to
    lossy traffic only (RDMA traffic rides a lossless class, as PFC
    provides in the paper's RoCE deployments). [corrupt] flips one
    random payload byte with the given probability — checksums must
    turn corruption into loss. *)

val sim : t -> Engine.Sim.t
val cost : t -> Cost.t

val attach : t -> mac:Addr.Mac.t -> rx:(string -> unit) -> port
(** Attach a NIC. [rx] fires (as a simulation event) when a frame
    arrives at this port. *)

val send : t -> port -> ?lossless:bool -> string -> unit
(** Transmit a frame out of a port. Unicast frames go to the port owning
    the destination MAC; broadcast frames go to every other port. *)

val set_loss : t -> float -> unit
(** Change the drop probability mid-run (fault injection). *)

val stats : t -> stats
