(** IPv4 headers (RFC 791), no options. Fragmentation is supported for
    UDP datagrams above the MTU; TCP never fragments (it segments at
    the MSS). *)

type header = {
  total_length : int;  (** header + payload bytes. *)
  identification : int;
  ttl : int;
  protocol : int;
  src : Addr.Ip.t;
  dst : Addr.Ip.t;
  more_fragments : bool;
  fragment_offset : int;  (** payload offset in bytes; multiple of 8. *)
}

val size : int
(** 20 bytes. *)

val protocol_udp : int
val protocol_tcp : int

val write : Bytes.t -> int -> header -> int
(** Serialize with a correct header checksum. *)

val fragment_of : total_length:int -> protocol:int -> src:Addr.Ip.t -> dst:Addr.Ip.t ->
  identification:int -> more_fragments:bool -> fragment_offset:int -> header

val whole : total_length:int -> protocol:int -> src:Addr.Ip.t -> dst:Addr.Ip.t ->
  identification:int -> header
(** An unfragmented packet (DF semantics are not modelled). *)

val read : Bytes.t -> int -> header * int
(** Parse and verify the header checksum; raises {!Wire.Malformed} on
    corruption, truncation or options. *)
