(** The RDMA-class kernel-bypass NIC.

    Unlike {!Dpdk_sim}, this device implements a network transport in
    "hardware": ordered, reliable, flow-controlled message delivery
    (charged to the device, not the host CPU), plus memory registration
    with rkeys and one-sided remote writes. This is the offload
    asymmetry of §2.1 that forces a portable datapath OS: a libOS on
    this device (Catmint) needs no software transport, while a libOS on
    {!Dpdk_sim} (Catnip) needs a full TCP stack.

    Following Catmint's design (§6.2), there is one queue pair per
    device; connection multiplexing is the libOS's job. RDMA traffic
    rides the lossless fabric class (PFC). *)

type t

type completion =
  | Send_done of { wr_id : int }
      (** A two-sided send left the device. *)
  | Recv of { src_mac : Addr.Mac.t; imm : int; payload : string }
      (** A two-sided send arrived and consumed a posted recv buffer. *)
  | Write_done of { wr_id : int; ok : bool }
      (** A one-sided write was acknowledged by the remote device;
          [ok = false] means the rkey or bounds check failed. *)

val create : Fabric.t -> mac:Addr.Mac.t -> ip:Addr.Ip.t -> unit -> t

val mac : t -> Addr.Mac.t
val ip : t -> Addr.Ip.t

val max_message_size : int

(** {1 Two-sided verbs} *)

val post_send : t -> dst:Addr.Mac.t -> wr_id:int -> imm:int -> string -> unit
(** Reliable ordered message send. Raises [Invalid_argument] beyond
    {!max_message_size}. *)

val post_recv : t -> unit
(** Post one receive buffer. An arriving message with no posted buffer
    is dropped and counted in {!rnr_drops} — the receiver-not-ready
    failure Catmint's flow-control credits exist to prevent. *)

val recv_credits : t -> int

(** {1 One-sided verbs} *)

val register_region : t -> Bytes.t -> int
(** Expose a local region for remote writes; returns its rkey. *)

val post_write :
  t -> dst:Addr.Mac.t -> wr_id:int -> rkey:int -> offset:int -> string -> unit
(** Write bytes into a remote registered region. Completes locally with
    [Write_done] once the remote device acks. *)

(** {1 Completion queue} *)

val poll_cq : t -> max:int -> completion list
val cq_pending : t -> int
val cq_signal : t -> Engine.Condvar.t
val rnr_drops : t -> int
