lib/net/ssd_sim.mli: Cost Engine
