lib/net/rdma_sim.ml: Addr Bytes Cost Engine Eth Fabric Hashtbl List Queue String Wire
