lib/net/tcp_wire.ml: Ipv4 List Wire
