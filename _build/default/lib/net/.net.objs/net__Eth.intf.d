lib/net/eth.mli: Addr Bytes
