lib/net/ipv4.ml: Addr Wire
