lib/net/dpdk_sim.ml: Addr Cost Engine Fabric List Queue
