lib/net/ipv4.mli: Addr Bytes
