lib/net/fabric.ml: Addr Bytes Char Cost Engine Eth Format Hashtbl List Printf String Wire
