lib/net/arp.ml: Addr Eth Wire
