lib/net/eth.ml: Addr Wire
