lib/net/rdma_sim.mli: Addr Bytes Engine Fabric
