lib/net/fabric.mli: Addr Cost Engine
