lib/net/udp_wire.mli: Addr Bytes
