lib/net/cost.mli: Format
