lib/net/ssd_sim.ml: Bytes Cost Engine List Printf Queue String
