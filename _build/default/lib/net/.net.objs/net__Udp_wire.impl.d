lib/net/udp_wire.ml: Ipv4 Wire
