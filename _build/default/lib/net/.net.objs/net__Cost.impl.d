lib/net/cost.ml: Format
