lib/net/addr.ml: Format
