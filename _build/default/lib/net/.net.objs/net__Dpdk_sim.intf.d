lib/net/dpdk_sim.mli: Addr Engine Fabric
