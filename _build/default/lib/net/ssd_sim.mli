(** The SPDK-class NVMe device: asynchronous submission/completion
    queues over a byte-addressed persistent store, with Optane-class
    latency. Commands are submitted without blocking and complete on the
    completion queue — the poll-driven model Cattree's log stack sits
    on. The device executes one command at a time (Optane-like queue
    depth sensitivity is not the point; ordering determinism is). *)

type t

type completion = { id : int; ok : bool; data : string (** read payload, "" for writes *) }

val create : Engine.Sim.t -> cost:Cost.t -> capacity:int -> t

val capacity : t -> int

val submit_write : t -> id:int -> off:int -> string -> unit
(** Persist bytes at a device offset. Completes with [ok = false] when
    the range is out of bounds. *)

val submit_read : t -> id:int -> off:int -> len:int -> unit

val submit_flush : t -> id:int -> unit
(** Barrier: completes after all previously submitted writes. *)

val poll_cq : t -> max:int -> completion list
val cq_pending : t -> int
val cq_signal : t -> Engine.Condvar.t

val bytes_written : t -> int
val contents : t -> off:int -> len:int -> string
(** Direct peek at the store, for tests and crash-recovery checks. *)
