(** Big-endian byte-level accessors shared by all header codecs, plus
    the RFC 1071 Internet checksum. *)

exception Malformed of string
(** Raised by header readers on truncated or inconsistent input. *)

val fail : string -> 'a
(** Raise {!Malformed}. *)

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
(** 32-bit big-endian value as a non-negative int. *)

val set_u32 : Bytes.t -> int -> int -> unit
val get_u48 : Bytes.t -> int -> int
val set_u48 : Bytes.t -> int -> int -> unit

val need : Bytes.t -> int -> int -> unit
(** [need b off n] checks [n] bytes are available at [off]. *)

val checksum : ?init:int -> Bytes.t -> int -> int -> int
(** [checksum b off len] is the one's-complement Internet checksum of
    the range. [init] folds in a pseudo-header sum computed with
    {!pseudo_sum}. *)

val pseudo_sum : src:int -> dst:int -> proto:int -> len:int -> int
(** Partial sum of the IPv4 pseudo-header used by UDP and TCP. *)
