(** The DPDK-class kernel-bypass NIC: a raw Ethernet device with
    user-level tx/rx rings and nothing else — every protocol above L2 is
    the software stack's problem, exactly the offload split Catnip
    builds on (§2.1).

    CPU costs of driving the device ([Cost.dpdk_tx_ns], [dpdk_rx_ns])
    are charged by the calling software; this module charges only the
    NIC hardware pipeline and, on virtualized profiles, the SmartNIC
    vnet translation. *)

type t

val create :
  Fabric.t -> mac:Addr.Mac.t -> ip:Addr.Ip.t -> ?rx_ring_size:int -> unit -> t
(** Attach a NIC to the fabric. [rx_ring_size] (default 1024) bounds the
    receive ring; frames arriving at a full ring are dropped, which is
    how overload shows up at µs scale. *)

val mac : t -> Addr.Mac.t
val ip : t -> Addr.Ip.t

val tx_burst : t -> string list -> unit
(** Hand frames to the NIC for transmission (rte_tx_burst). *)

val rx_burst : t -> max:int -> string list
(** Pull up to [max] frames from the receive ring (rte_rx_burst);
    empty list when the ring is empty. *)

val rx_pending : t -> int

val rx_signal : t -> Engine.Condvar.t
(** Broadcast whenever a frame lands in the rx ring. Pollers park here
    instead of spinning through idle virtual time. *)

val rx_dropped : t -> int
(** Frames dropped at a full rx ring. *)
