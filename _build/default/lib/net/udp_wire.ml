type header = { src_port : int; dst_port : int; length : int }

let size = 8

let write b off h ~src_ip ~dst_ip =
  Wire.need b off h.length;
  Wire.set_u16 b off h.src_port;
  Wire.set_u16 b (off + 2) h.dst_port;
  Wire.set_u16 b (off + 4) h.length;
  Wire.set_u16 b (off + 6) 0;
  let init =
    Wire.pseudo_sum ~src:src_ip ~dst:dst_ip ~proto:Ipv4.protocol_udp ~len:h.length
  in
  let csum = Wire.checksum ~init b off h.length in
  (* RFC 768: an all-zero checksum means "none"; transmit 0xffff. *)
  Wire.set_u16 b (off + 6) (if csum = 0 then 0xffff else csum);
  off + size

let read b off ~src_ip ~dst_ip =
  Wire.need b off size;
  let src_port = Wire.get_u16 b off in
  let dst_port = Wire.get_u16 b (off + 2) in
  let length = Wire.get_u16 b (off + 4) in
  if length < size then Wire.fail "udp: bad length";
  Wire.need b off length;
  let init = Wire.pseudo_sum ~src:src_ip ~dst:dst_ip ~proto:Ipv4.protocol_udp ~len:length in
  if Wire.get_u16 b (off + 6) <> 0 && Wire.checksum ~init b off length <> 0 then
    Wire.fail "udp: bad checksum";
  ({ src_port; dst_port; length }, off + size)
