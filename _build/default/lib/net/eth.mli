(** Ethernet II framing. *)

type header = { dst : Addr.Mac.t; src : Addr.Mac.t; ethertype : int }

val size : int
(** 14 bytes. *)

val ethertype_ipv4 : int
val ethertype_arp : int

val write : Bytes.t -> int -> header -> int
(** Serialize at an offset; returns the offset past the header. *)

val read : Bytes.t -> int -> header * int
(** Parse at an offset; returns the header and the payload offset.
    Raises {!Wire.Malformed} when truncated. *)
