type header = { dst : Addr.Mac.t; src : Addr.Mac.t; ethertype : int }

let size = 14
let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806

let write b off h =
  Wire.need b off size;
  Wire.set_u48 b off h.dst;
  Wire.set_u48 b (off + 6) h.src;
  Wire.set_u16 b (off + 12) h.ethertype;
  off + size

let read b off =
  Wire.need b off size;
  let dst = Wire.get_u48 b off in
  let src = Wire.get_u48 b (off + 6) in
  let ethertype = Wire.get_u16 b (off + 12) in
  ({ dst; src; ethertype }, off + size)
