(** TCP segment headers (RFC 793) with the options a µs-scale stack
    needs: MSS, window scaling, timestamps (RFC 7323) and selective
    acknowledgments (RFC 2018). Sequence
    numbers are 32-bit values carried as non-negative ints; modular
    arithmetic lives in the TCP library's [Seqnum]. *)

type options = {
  mss : int option;  (** SYN only. *)
  window_scale : int option;  (** SYN only. *)
  timestamp : (int * int) option;  (** (TSval, TSecr). *)
  sack_permitted : bool;  (** SYN only (RFC 2018). *)
  sack_blocks : (int * int) list;
      (** selective-ack edges [left, right) — at most 3 with
          timestamps. *)
}

val no_options : options

type header = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  syn : bool;
  ack_flag : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  window : int;  (** raw 16-bit window field (unscaled). *)
  options : options;
}

val header_size : header -> int
(** 20 bytes plus padded options. *)

val write : Bytes.t -> int -> header -> payload_len:int -> src_ip:Addr.Ip.t -> dst_ip:Addr.Ip.t -> int
(** Serialize at an offset; the payload must already sit after the
    header (at [off + header_size h]) for checksumming. Returns the
    payload offset. *)

val read : Bytes.t -> int -> seg_len:int -> src_ip:Addr.Ip.t -> dst_ip:Addr.Ip.t -> header * int
(** Parse a segment occupying [seg_len] bytes at [off] (header +
    payload, from the IP total length); verifies the checksum and
    returns the header and payload offset. *)
