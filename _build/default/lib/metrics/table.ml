type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.columns);
  t.rows <- row :: t.rows

let print t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule = String.make (max total (String.length t.title)) '-' in
  let render row =
    row
    |> List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell)
    |> String.concat "  "
    |> print_endline
  in
  print_endline "";
  print_endline t.title;
  print_endline rule;
  render t.columns;
  print_endline rule;
  List.iter render rows;
  print_endline rule

let cell_ns v =
  if v < 1_000 then Printf.sprintf "%dns" v
  else if v < 1_000_000 then Printf.sprintf "%.2fus" (float_of_int v /. 1e3)
  else if v < 1_000_000_000 then Printf.sprintf "%.2fms" (float_of_int v /. 1e6)
  else Printf.sprintf "%.3fs" (float_of_int v /. 1e9)

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
