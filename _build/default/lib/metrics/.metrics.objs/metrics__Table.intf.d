lib/metrics/table.mli:
