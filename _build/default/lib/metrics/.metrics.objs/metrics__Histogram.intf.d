lib/metrics/histogram.mli:
