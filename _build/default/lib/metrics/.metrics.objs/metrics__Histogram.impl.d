lib/metrics/histogram.ml: Array Stdlib
