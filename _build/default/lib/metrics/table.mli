(** Fixed-width text tables for experiment output, so every benchmark
    prints the same shape of rows the paper's figures report. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Cells are rendered verbatim; the row must match the column count. *)

val print : t -> unit
(** Render to stdout with a title rule and aligned columns. *)

val cell_ns : int -> string
(** Render a nanosecond latency with an adaptive unit. *)

val cell_f : ?decimals:int -> float -> string

val cell_i : int -> string
