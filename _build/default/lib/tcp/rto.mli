(** Retransmission timeout estimation (RFC 6298).

    SRTT/RTTVAR are kept in nanoseconds. The classic 1-second minimum is
    far too conservative for a µs-scale datacenter stack, so the floor
    is a parameter (Catnip-style stacks run single-digit-ms floors). *)

type t

val create : ?min_rto:int -> ?max_rto:int -> unit -> t
(** Defaults: floor 1 ms, ceiling 4 s. Initial RTO is the greater of the
    floor and 4 ms, pending the first sample. *)

val observe : t -> int -> unit
(** Feed one RTT sample (ns). Per Karn's algorithm the caller must only
    feed samples from segments that were not retransmitted. *)

val rto : t -> int
(** Current timeout, including any backoff. *)

val backoff : t -> unit
(** Double the timeout after a retransmission (capped at the ceiling). *)

val reset_backoff : t -> unit
(** New ack progress clears exponential backoff. *)

val srtt : t -> int option
(** Smoothed RTT, once at least one sample has arrived. *)
