(** 32-bit TCP sequence-number arithmetic (RFC 793 §3.3).

    Sequence numbers live on a mod-2^32 circle; comparisons are only
    meaningful between numbers less than half the space apart, which
    window clamping guarantees. *)

type t = int
(** Always in [0, 2^32). *)

val add : t -> int -> t
val sub : t -> t -> int
(** [sub a b] is the signed circular distance from [b] to [a]
    (positive when [a] is ahead of [b]). *)

val lt : t -> t -> bool
val le : t -> t -> bool
val max : t -> t -> t

val in_window : t -> base:t -> size:int -> bool
(** Whether a sequence number falls in [base, base+size). *)
