(** Out-of-order segment reassembly for one TCP connection.

    Holds payload byte ranges keyed by sequence number and releases the
    longest in-order prefix as [rcv_nxt] advances. Overlapping and
    duplicate segments are trimmed, so re-transmissions cannot duplicate
    delivered bytes. *)

type t

val create : rcv_nxt:Seqnum.t -> capacity:int -> t
(** [capacity] bounds buffered out-of-order bytes; segments beyond it
    are dropped (the peer will retransmit). *)

val insert : t -> seq:Seqnum.t -> string -> unit
(** Offer a segment's payload at its sequence number. Bytes at or below
    the in-order point are trimmed away. *)

val pop_ready : t -> string option
(** Next in-order chunk, advancing the in-order point; [None] when the
    next byte has not arrived. *)

val rcv_nxt : t -> Seqnum.t
(** The next expected sequence number (what we ack). *)

val buffered_bytes : t -> int
(** Out-of-order bytes currently held (counts against the advertised
    window). *)

val ranges : t -> (Seqnum.t * Seqnum.t) list
(** Coalesced [left, right) sequence ranges of buffered out-of-order
    data, in sequence order — the receiver's SACK blocks (RFC 2018). *)
