type t = {
  min_rto : int;
  max_rto : int;
  mutable srtt : int;
  mutable rttvar : int;
  mutable have_sample : bool;
  mutable base_rto : int;
  mutable shift : int; (* exponential backoff exponent *)
}

let create ?(min_rto = 1_000_000) ?(max_rto = 4_000_000_000) () =
  {
    min_rto;
    max_rto;
    srtt = 0;
    rttvar = 0;
    have_sample = false;
    base_rto = max min_rto 4_000_000;
    shift = 0;
  }

let clamp t v = min t.max_rto (max t.min_rto v)

let observe t sample =
  if sample > 0 then begin
    if not t.have_sample then begin
      (* RFC 6298 (2.2): SRTT = R, RTTVAR = R/2. *)
      t.srtt <- sample;
      t.rttvar <- sample / 2;
      t.have_sample <- true
    end
    else begin
      (* RFC 6298 (2.3): beta = 1/4, alpha = 1/8. *)
      t.rttvar <- (3 * t.rttvar / 4) + (abs (t.srtt - sample) / 4);
      t.srtt <- (7 * t.srtt / 8) + (sample / 8)
    end;
    t.base_rto <- clamp t (t.srtt + max 1 (4 * t.rttvar))
  end

let rto t = min t.max_rto (t.base_rto lsl t.shift)

let backoff t = if rto t < t.max_rto then t.shift <- t.shift + 1

let reset_backoff t = t.shift <- 0

let srtt t = if t.have_sample then Some t.srtt else None
