lib/tcp/iface.ml: Bytes Hashtbl List Net Queue String
