lib/tcp/reassembly.mli: Seqnum
