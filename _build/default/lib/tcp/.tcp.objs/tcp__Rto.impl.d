lib/tcp/rto.ml:
