lib/tcp/seqnum.mli:
