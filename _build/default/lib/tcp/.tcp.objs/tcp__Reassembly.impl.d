lib/tcp/reassembly.ml: List Seqnum String
