lib/tcp/rto.mli:
