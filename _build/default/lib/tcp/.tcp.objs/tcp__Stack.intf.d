lib/tcp/stack.mli: Cc Engine Iface Memory Net
