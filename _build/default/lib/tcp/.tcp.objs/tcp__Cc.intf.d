lib/tcp/cc.mli:
