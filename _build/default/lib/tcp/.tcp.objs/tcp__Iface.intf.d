lib/tcp/iface.mli: Bytes Net
