lib/tcp/seqnum.ml:
