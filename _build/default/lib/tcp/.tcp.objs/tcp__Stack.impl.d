lib/tcp/stack.ml: Bytes Cc Engine Hashtbl Iface Int64 List Memory Net Queue Reassembly Rto Seqnum String
