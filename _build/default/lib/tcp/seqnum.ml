type t = int

let mask = 0xFFFF_FFFF

let add a n = (a + n) land mask

let sub a b =
  let d = (a - b) land mask in
  if d >= 0x8000_0000 then d - 0x1_0000_0000 else d

let lt a b = sub a b < 0
let le a b = sub a b <= 0
let max a b = if lt a b then b else a
let in_window s ~base ~size = sub s base >= 0 && sub s base < size
