(** One host's network interface as seen by the software stacks: frame
    serialization, IPv4 encapsulation and ARP resolution.

    The interface is parameterized on a [clock] and a [tx_frame] sink,
    never on the simulator — this is what makes the stack deterministic
    and trace-drivable (§6.3): feed [input] a recorded frame sequence
    and every output is a pure function of inputs and clock readings. *)

type t

val create :
  ?arp_retry_ns:int ->
  ?mtu:int ->
  mac:Net.Addr.Mac.t ->
  ip:Net.Addr.Ip.t ->
  clock:(unit -> int) ->
  tx_frame:(string -> unit) ->
  unit ->
  t
(** [arp_retry_ns] (default 1 ms) bounds how often an unanswered ARP
    request is re-sent while packets are parked. [mtu] (default 1500)
    triggers RFC 791 fragmentation for larger datagrams; fragments are
    reassembled on input and presented as one packet. *)

val mac : t -> Net.Addr.Mac.t
val ip : t -> Net.Addr.Ip.t
val clock : t -> int

val output :
  t -> dst_ip:Net.Addr.Ip.t -> protocol:int -> len:int -> write:(Bytes.t -> int -> unit) -> unit
(** Emit an IPv4 packet carrying [len] bytes of transport data; [write]
    fills the transport header and payload at the given offset. If the
    destination MAC is unknown the packet is parked and an ARP request
    goes out; resolution flushes parked packets in order. *)

type input = Packet of Net.Ipv4.header * Bytes.t * int  (** transport offset *) | Consumed

val input : t -> string -> input
(** Classify one received frame. ARP is handled internally (requests
    answered, replies learned); frames not addressed to this interface
    and malformed frames are dropped as [Consumed]. *)

val arp_resolved : t -> Net.Addr.Ip.t -> bool
(** Test hook: whether the ARP cache has an entry. *)

val pending_arp : t -> int
(** Packets parked awaiting ARP resolution. *)
