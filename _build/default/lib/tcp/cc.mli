(** Congestion-control interface shared by {!Cubic} and {!Newreno}.

    The connection drives the controller with ack/loss events; the
    controller answers one question: how many bytes may be in flight. *)

type algorithm = Cubic | Newreno | None_cc

type t

val create : algorithm -> mss:int -> now:int -> t

val cwnd : t -> int
(** Current congestion window in bytes. Unbounded for [None_cc]. *)

val on_ack : t -> acked:int -> now:int -> unit
(** New data acknowledged. *)

val on_fast_retransmit : t -> now:int -> unit
(** Triple-duplicate-ack loss signal (multiplicative decrease). *)

val on_timeout : t -> now:int -> unit
(** RTO loss signal (collapse to one segment, re-enter slow start). *)

val in_slow_start : t -> bool
val name : t -> string
