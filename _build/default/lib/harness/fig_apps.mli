(** The application experiments: Figure 10 (UDP relay), Figure 11 (KV
    store throughput) and Figure 12 (TxnStore YCSB-F latency). *)

type relay_row = { system : string; avg_ns : int; p99_ns : int }

val relay_count : int ref
(** Default packet count for Figure 10 (settable by the CLI). *)

val fig10 : ?count:int -> unit -> relay_row list
(** Relay latency seen by a common kernel-path traffic generator against
    Linux, io_uring and Catnip relay servers. *)

val print_fig10 : relay_row list -> unit

type kv_row = {
  system : string;
  op : [ `Get | `Set ];
  persist : bool;
  kops : float;
}

val fig11 : ?ops_per_client:int -> ?clients:int -> unit -> kv_row list
(** KV-store throughput (closed loop, [clients] concurrent connections),
    GET and SET, in-memory and with fsync-per-SET persistence, for
    Linux, Catnap, Catmint and Catnip. *)

val print_fig11 : kv_row list -> unit

type txn_row = { system : string; avg_ns : int; p99_ns : int }

val fig12 : ?txns:int -> ?keys:int -> unit -> txn_row list
(** YCSB-F transaction latency over 3 replicas: Linux TCP, Linux UDP,
    custom RDMA, Catnap, Catmint, Catnip TCP. *)

val print_fig12 : txn_row list -> unit
