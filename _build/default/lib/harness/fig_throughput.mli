(** The throughput experiments: Figure 8 (NetPIPE-style single-stream
    bandwidth vs message size) and Figure 9 (latency vs offered load). *)

type netpipe_row = { system : string; msg_size : int; gbps : float }

val fig8 : ?sizes:int list -> unit -> netpipe_row list
(** Ping-pong bandwidth ([2 * size / RTT], best of several warmed
    iterations) for raw DPDK, raw RDMA, Catmint, Catnip UDP and
    Catnip TCP. *)

val print_fig8 : netpipe_row list -> unit

type load_row = {
  system : string;
  offered_kops : float;
  achieved_kops : float;
  p50_ns : int;
  p99_ns : int;
}

val fig9 : ?rates:float list -> ?duration_ms:int -> unit -> load_row list
(** Open-loop latency vs throughput sweep for Catmint, Catnip UDP,
    Catnip TCP, eRPC, Shenango and Caladan. *)

val print_fig9 : load_row list -> unit

val demi_open_loop :
  ?cost:Net.Cost.t ->
  ?catmint_window:int ->
  flavor:Demikernel.Boot.flavor ->
  proto:Common.echo_proto ->
  msg_size:int ->
  rate_per_sec:float ->
  duration_ns:int ->
  unit ->
  Baselines.Kb_lib.load_result
(** One open-loop point against a Demikernel echo server (exposed for
    ablations). *)
