(** Shared experiment scaffolding: build a world, run systems, collect
    latency distributions. *)

type world = { sim : Engine.Sim.t; fabric : Net.Fabric.t; cost : Net.Cost.t }

val make_world : ?cost:Net.Cost.t -> ?loss:float -> ?seed:int64 -> unit -> world

val run_world : ?horizon_s:int -> world -> unit

type echo_proto = Echo_tcp | Echo_udp

val demi_echo_rtt :
  ?cost:Net.Cost.t ->
  ?persist:bool ->
  ?msg_size:int ->
  ?count:int ->
  proto:echo_proto ->
  Demikernel.Boot.flavor ->
  Metrics.Histogram.t
(** Closed-loop echo between two hosts of the given flavor; returns the
    RTT distribution. *)

val linux_echo_rtt :
  ?cost:Net.Cost.t ->
  ?persist:bool ->
  ?msg_size:int ->
  ?count:int ->
  proto:echo_proto ->
  unit ->
  Metrics.Histogram.t

val kb_echo_rtt :
  ?cost:Net.Cost.t ->
  ?msg_size:int ->
  ?count:int ->
  Baselines.Kb_lib.profile ->
  Metrics.Histogram.t

val raw_dpdk_rtt : ?cost:Net.Cost.t -> ?msg_size:int -> ?count:int -> unit -> Metrics.Histogram.t
val raw_rdma_rtt : ?cost:Net.Cost.t -> ?msg_size:int -> ?count:int -> unit -> Metrics.Histogram.t

val default_count : int ref
(** Echo iterations per measurement (settable by the CLI for quick
    runs). *)
