(* ---------- Figure 10: UDP relay ---------- *)

type relay_row = { system : string; avg_ns : int; p99_ns : int }

let relay_count = ref 2_000

let relay_point system ~server ~count =
  (* [server] installs the relay under test on host index 1; the traffic
     generator is always the same kernel-path host. *)
  let w = Common.make_world () in
  server w;
  let gen_kernel = Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:2 () in
  let hist = Metrics.Histogram.create () in
  Baselines.Linux_apps.relay_generator w.Common.sim gen_kernel
    ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 3478)
    ~src_port:4000 ~session:7 ~msg_size:200 ~count
    ~record:(Metrics.Histogram.add hist)
    ~on_done:(fun () -> ());
  Common.run_world w;
  {
    system;
    avg_ns = int_of_float (Metrics.Histogram.mean hist);
    p99_ns = Metrics.Histogram.p99 hist;
  }

let fig10 ?count () =
  let count = match count with Some c -> c | None -> !relay_count in
  [
    relay_point "Linux" ~count ~server:(fun w ->
        let kernel = Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:1 () in
        Baselines.Linux_apps.relay_server w.Common.sim kernel ~port:3478);
    relay_point "io_uring" ~count ~server:(fun w ->
        let kernel =
          Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:1
            ~mode:Oskernel.Kernel.Uring ()
        in
        Baselines.Linux_apps.relay_server w.Common.sim kernel ~port:3478);
    relay_point "Catnip" ~count ~server:(fun w ->
        let node =
          Demikernel.Boot.make w.Common.sim w.Common.fabric ~index:1 Demikernel.Boot.Catnip_os
        in
        Demikernel.Boot.run_app node (Apps.Relay.server ~port:3478);
        Demikernel.Boot.start node);
  ]

let print_fig10 rows =
  let table =
    Metrics.Table.create ~title:"Figure 10: UDP relay latency (common kernel generator)"
      ~columns:[ "system"; "avg"; "p99" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [ r.system; Metrics.Table.cell_ns r.avg_ns; Metrics.Table.cell_ns r.p99_ns ])
    rows;
  Metrics.Table.print table

(* ---------- Figure 11: KV store throughput ---------- *)

type kv_row = {
  system : string;
  op : [ `Get | `Set ];
  persist : bool;
  kops : float;
}

(* Closed-loop throughput over [clients] connections: ops/sec measured
   from the first post-preload operation to the last completion. *)
let kv_throughput ~system ~op ~persist ~clients ~ops_per_client ~make_server ~make_client =
  let w = Common.make_world () in
  make_server w ~persist;
  let first_start = ref max_int in
  let last_end = ref 0 in
  let done_count = ref 0 in
  for c = 1 to clients do
    make_client w ~index:(1 + c) ~seed:c ~op ~ops:ops_per_client
      ~on_start:(fun () -> first_start := min !first_start (Engine.Sim.now w.Common.sim))
      ~on_done:(fun () ->
        last_end := max !last_end (Engine.Sim.now w.Common.sim);
        incr done_count)
  done;
  Common.run_world w;
  let elapsed = !last_end - !first_start in
  let total_ops = !done_count * ops_per_client in
  {
    system;
    op;
    persist;
    kops =
      (if elapsed > 0 && !done_count = clients then
         float_of_int total_ops /. (float_of_int elapsed /. 1e9) /. 1e3
       else 0.);
  }

let kv_keys = 512
let kv_value = 64

let demi_kv flavor w ~persist =
  let server =
    Demikernel.Boot.make w.Common.sim w.Common.fabric ~index:1 ~with_disk:persist flavor
  in
  Demikernel.Boot.run_app server (Apps.Dkv.server ~port:6379 ~persist);
  Demikernel.Boot.start server;
  flavor

let demi_kv_client flavor w ~index ~seed ~op ~ops ~on_start ~on_done =
  let client = Demikernel.Boot.make w.Common.sim w.Common.fabric ~index flavor in
  Demikernel.Boot.run_app client
    (Apps.Dkv.bench_client
       ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 6379)
       ~keys:kv_keys ~value_size:kv_value ~ops ~kind:op ~seed ~on_start ~on_done);
  Demikernel.Boot.start client

let linux_kv w ~persist =
  let kernel =
    Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:1 ~with_disk:persist ()
  in
  Baselines.Linux_apps.kv_server w.Common.sim kernel ~port:6379 ~persist

let linux_kv_client w ~index ~seed ~op ~ops ~on_start ~on_done =
  let kernel = Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index () in
  Baselines.Linux_apps.kv_bench_client w.Common.sim kernel
    ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 6379)
    ~keys:kv_keys ~value_size:kv_value ~ops ~kind:op ~seed ~on_start
    ~record:(fun _ -> ())
    ~on_done

(* The benchmark client is redis-benchmark on a kernel host (as in the
   paper) for every TCP-compatible server; only Catmint — whose wire
   protocol is RDMA messages — uses a Demikernel client, which inflates
   its relative numbers (recorded in EXPERIMENTS.md). *)
let fig11 ?(ops_per_client = 300) ?(clients = 32) () =
  let systems =
    [
      ("Linux", `Linux);
      ("Catnap", `Demi_server_kernel_client Demikernel.Boot.Catnap_os);
      ("Catmint", `Demi Demikernel.Boot.Catmint_os);
      ("Catnip", `Demi_server_kernel_client Demikernel.Boot.Catnip_os);
    ]
  in
  List.concat_map
    (fun (name, kind) ->
      List.concat_map
        (fun persist ->
          List.map
            (fun op ->
              match kind with
              | `Linux ->
                  kv_throughput ~system:name ~op ~persist ~clients ~ops_per_client
                    ~make_server:linux_kv ~make_client:linux_kv_client
              | `Demi_server_kernel_client flavor ->
                  kv_throughput ~system:name ~op ~persist ~clients ~ops_per_client
                    ~make_server:(fun w ~persist -> ignore (demi_kv flavor w ~persist))
                    ~make_client:linux_kv_client
              | `Demi flavor ->
                  kv_throughput ~system:name ~op ~persist ~clients ~ops_per_client
                    ~make_server:(fun w ~persist -> ignore (demi_kv flavor w ~persist))
                    ~make_client:(demi_kv_client flavor))
            [ `Get; `Set ])
        [ false; true ])
    systems

let print_fig11 rows =
  let table =
    Metrics.Table.create ~title:"Figure 11: KV store throughput (kops/s)"
      ~columns:[ "system"; "op"; "persistence"; "kops" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          r.system;
          (match r.op with `Get -> "GET" | `Set -> "SET");
          (if r.persist then "fsync-per-SET" else "in-memory");
          Metrics.Table.cell_f ~decimals:1 r.kops;
        ])
    rows;
  Metrics.Table.print table

(* ---------- Figure 12: TxnStore YCSB-F ---------- *)

type txn_row = { system : string; avg_ns : int; p99_ns : int }

let txn_value = 700 (* §7.6: 700 B values *)

let txn_point system ~keys ~txns ~run =
  let w = Common.make_world () in
  let hist = Metrics.Histogram.create () in
  run w ~keys ~txns ~record:(Metrics.Histogram.add hist);
  Common.run_world w;
  {
    system;
    avg_ns = int_of_float (Metrics.Histogram.mean hist);
    p99_ns = Metrics.Histogram.p99 hist;
  }

let demi_txn flavor w ~keys ~txns ~record =
  let replicas =
    List.map
      (fun i ->
        let node = Demikernel.Boot.make w.Common.sim w.Common.fabric ~index:i flavor in
        Demikernel.Boot.run_app node (Apps.Txnstore.server ~port:7447);
        Demikernel.Boot.start node;
        Demikernel.Boot.endpoint node 7447)
      [ 1; 2; 3 ]
  in
  let client = Demikernel.Boot.make w.Common.sim w.Common.fabric ~index:4 flavor in
  Demikernel.Boot.run_app client
    (Apps.Txnstore.ycsb_f ~dst_replicas:replicas ~keys ~value_size:txn_value ~txns ~theta:0.99
       ~seed:9 ~record);
  Demikernel.Boot.start client

let linux_txn transport w ~keys ~txns ~record =
  let replicas =
    List.map
      (fun i ->
        let kernel = Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:i () in
        (match transport with
        | `Tcp -> Baselines.Linux_apps.txn_replica w.Common.sim kernel ~port:7447
        | `Udp -> Baselines.Linux_apps.txn_replica_udp w.Common.sim kernel ~port:7447);
        Net.Addr.endpoint (Net.Addr.Ip.of_index i) 7447)
      [ 1; 2; 3 ]
  in
  let kernel = Baselines.Linux_apps.make_kernel w.Common.sim w.Common.fabric ~index:4 () in
  Baselines.Linux_apps.txn_ycsb_client ~transport w.Common.sim kernel ~replicas ~keys
    ~value_size:txn_value ~txns ~theta:0.99 ~seed:9 ~record
    ~on_done:(fun () -> ())

let rdma_txn w ~keys ~txns ~record =
  List.iter (fun i -> Baselines.Txn_rdma.replica w.Common.sim w.Common.fabric ~index:i) [ 1; 2; 3 ];
  Baselines.Txn_rdma.ycsb_client w.Common.sim w.Common.fabric ~index:4
    ~replica_indexes:[ 1; 2; 3 ] ~keys ~value_size:txn_value ~txns ~theta:0.99 ~seed:9 ~record
    ~on_done:(fun () -> ())

let fig12 ?(txns = 1_000) ?(keys = 200) () =
  [
    txn_point "Linux (TCP)" ~keys ~txns ~run:(linux_txn `Tcp);
    txn_point "Linux (UDP)" ~keys ~txns ~run:(linux_txn `Udp);
    txn_point "RDMA (custom)" ~keys ~txns ~run:rdma_txn;
    txn_point "Catnap" ~keys ~txns ~run:(demi_txn Demikernel.Boot.Catnap_os);
    txn_point "Catmint" ~keys ~txns ~run:(demi_txn Demikernel.Boot.Catmint_os);
    txn_point "Catnip (TCP)" ~keys ~txns ~run:(demi_txn Demikernel.Boot.Catnip_os);
  ]

let print_fig12 rows =
  let table =
    Metrics.Table.create ~title:"Figure 12: TxnStore YCSB-F transaction latency"
      ~columns:[ "system"; "avg"; "p99" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [ r.system; Metrics.Table.cell_ns r.avg_ns; Metrics.Table.cell_ns r.p99_ns ])
    rows;
  Metrics.Table.print table
