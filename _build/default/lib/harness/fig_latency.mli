(** The latency experiments: Figures 5, 6 and 7. Each returns typed
    rows and can print itself in the paper's shape. *)

type row = {
  system : string;
  avg_ns : int;
  p99_ns : int;
  datapath_ns_per_io : int option;
      (** avg time attributable to the datapath OS per I/O operation
          (four I/Os per echo), relative to the raw device baseline. *)
}

val fig5 : unit -> row list
(** Echo RTTs, 64 B, Linux bare metal: Linux, Catnap, Catmint,
    Catnip (UDP), Catnip (TCP), eRPC, Shenango, Caladan, raw DPDK,
    raw RDMA. *)

val fig6_windows : unit -> row list
(** Echo on the Windows cluster profile: Linux (WSL), Catnap (WSL),
    Catpaw (RDMA). *)

val fig6_azure : unit -> row list
(** Echo in the Azure VM profile: Linux, Catnap, Catnip (vnet DPDK),
    Catmint (bare-metal Infiniband). *)

val fig7 : unit -> row list
(** Echo with synchronous logging to disk: Linux, Catnap,
    Catmint x Cattree, Catnip (UDP/TCP) x Cattree. *)

val print : title:string -> row list -> unit

val fig5_orderings_hold : ?cost:Net.Cost.t -> unit -> bool * string
(** Re-measure the Figure 5 systems under a (possibly perturbed) cost
    profile and check the paper's headline orderings; returns the
    verdict and a compact summary line. Used by the sensitivity
    analysis. *)
