(** Lines-of-code inventories (Tables 2 and 3) computed over this
    repository's own sources at run time, so the tables never go stale. *)

type row = { component : string; files : string list; lines : int }

val table2 : unit -> row list
(** LibOS sizes: the datapath OS components of this reproduction,
    mirroring the paper's Table 2 (per-libOS LoC). *)

val table3 : unit -> row list
(** Application sizes, POSIX (kernel-path baseline) vs Demikernel
    version, mirroring Table 3. *)

val print : title:string -> row list -> unit

val repo_root : unit -> string option
(** Nearest ancestor directory containing [dune-project]. *)
