type row = {
  system : string;
  avg_ns : int;
  p99_ns : int;
  datapath_ns_per_io : int option;
}

let row_of ?baseline system hist =
  let avg = int_of_float (Metrics.Histogram.mean hist) in
  {
    system;
    avg_ns = avg;
    p99_ns = Metrics.Histogram.p99 hist;
    (* Four datapath I/O operations per echo: client push/pop, server
       pop/push (Figure 5's upper numbers). *)
    datapath_ns_per_io =
      (match baseline with Some b when avg > b -> Some ((avg - b) / 4) | Some _ | None -> None);
  }

let fig5 () =
  let raw_dpdk = Common.raw_dpdk_rtt () in
  let raw_rdma = Common.raw_rdma_rtt () in
  let dpdk_base = int_of_float (Metrics.Histogram.mean raw_dpdk) in
  let rdma_base = int_of_float (Metrics.Histogram.mean raw_rdma) in
  [
    row_of "Linux" (Common.linux_echo_rtt ~proto:Common.Echo_udp ());
    row_of "Catnap" (Common.demi_echo_rtt ~proto:Common.Echo_udp Demikernel.Boot.Catnap_os);
    row_of "Catmint" ~baseline:rdma_base
      (Common.demi_echo_rtt ~proto:Common.Echo_tcp Demikernel.Boot.Catmint_os);
    row_of "Catnip (UDP)" ~baseline:dpdk_base
      (Common.demi_echo_rtt ~proto:Common.Echo_udp Demikernel.Boot.Catnip_os);
    row_of "Catnip (TCP)" ~baseline:dpdk_base
      (Common.demi_echo_rtt ~proto:Common.Echo_tcp Demikernel.Boot.Catnip_os);
    row_of "eRPC" (Common.kb_echo_rtt Baselines.Kb_lib.erpc);
    row_of "Shenango" (Common.kb_echo_rtt Baselines.Kb_lib.shenango);
    row_of "Caladan" (Common.kb_echo_rtt Baselines.Kb_lib.caladan);
    row_of "Raw DPDK" raw_dpdk;
    row_of "Raw RDMA" raw_rdma;
  ]

let fig6_windows () =
  let cost = Net.Cost.windows in
  [
    row_of "Linux (WSL)" (Common.linux_echo_rtt ~cost ~proto:Common.Echo_udp ());
    row_of "Catnap (WSL)"
      (Common.demi_echo_rtt ~cost ~proto:Common.Echo_udp Demikernel.Boot.Catnap_os);
    row_of "Catpaw (RDMA)"
      (Common.demi_echo_rtt ~cost ~proto:Common.Echo_tcp Demikernel.Boot.Catmint_os);
  ]

let fig6_azure () =
  let cost = Net.Cost.azure_vm in
  [
    row_of "Linux (VM)" (Common.linux_echo_rtt ~cost ~proto:Common.Echo_udp ());
    row_of "Catnap (VM)"
      (Common.demi_echo_rtt ~cost ~proto:Common.Echo_udp Demikernel.Boot.Catnap_os);
    row_of "Catnip (vnet DPDK)"
      (Common.demi_echo_rtt ~cost ~proto:Common.Echo_udp Demikernel.Boot.Catnip_os);
    row_of "Catmint (bare-metal IB)"
      (Common.demi_echo_rtt ~cost ~proto:Common.Echo_tcp Demikernel.Boot.Catmint_os);
  ]

let fig7 () =
  [
    row_of "Linux" (Common.linux_echo_rtt ~persist:true ~proto:Common.Echo_udp ());
    row_of "Catnap"
      (Common.demi_echo_rtt ~persist:true ~proto:Common.Echo_tcp Demikernel.Boot.Catnap_os);
    row_of "Catmint x Cattree"
      (Common.demi_echo_rtt ~persist:true ~proto:Common.Echo_tcp Demikernel.Boot.Catmint_os);
    row_of "Catnip (TCP) x Cattree"
      (Common.demi_echo_rtt ~persist:true ~proto:Common.Echo_tcp Demikernel.Boot.Catnip_os);
  ]

let fig5_orderings_hold ?cost () =
  let avg hist = int_of_float (Metrics.Histogram.mean hist) in
  let linux = avg (Common.linux_echo_rtt ?cost ~proto:Common.Echo_udp ()) in
  let catnap = avg (Common.demi_echo_rtt ?cost ~proto:Common.Echo_udp Demikernel.Boot.Catnap_os) in
  let catmint = avg (Common.demi_echo_rtt ?cost ~proto:Common.Echo_tcp Demikernel.Boot.Catmint_os) in
  let catnip_udp = avg (Common.demi_echo_rtt ?cost ~proto:Common.Echo_udp Demikernel.Boot.Catnip_os) in
  let catnip_tcp = avg (Common.demi_echo_rtt ?cost ~proto:Common.Echo_tcp Demikernel.Boot.Catnip_os) in
  let raw_rdma = avg (Common.raw_rdma_rtt ?cost ()) in
  let raw_dpdk = avg (Common.raw_dpdk_rtt ?cost ()) in
  let checks =
    [
      ("raw-rdma<catmint", raw_rdma < catmint);
      ("catmint<catnip-udp", catmint < catnip_udp);
      ("raw-dpdk<catnip-udp", raw_dpdk < catnip_udp);
      ("catnip-udp<catnip-tcp", catnip_udp < catnip_tcp);
      ("catnip-tcp<catnap", catnip_tcp < catnap);
      ("catnap<linux", catnap < linux);
    ]
  in
  let ok = List.for_all snd checks in
  let summary =
    Printf.sprintf "rdma=%.1f mint=%.1f dpdk=%.1f nip-u=%.1f nip-t=%.1f nap=%.1f linux=%.1f%s"
      (float_of_int raw_rdma /. 1e3)
      (float_of_int catmint /. 1e3)
      (float_of_int raw_dpdk /. 1e3)
      (float_of_int catnip_udp /. 1e3)
      (float_of_int catnip_tcp /. 1e3)
      (float_of_int catnap /. 1e3)
      (float_of_int linux /. 1e3)
      (if ok then ""
       else
         " broken:"
         ^ String.concat ","
             (List.filter_map (fun (n, v) -> if v then None else Some n) checks))
  in
  (ok, summary)

let print ~title rows =
  let table =
    Metrics.Table.create ~title
      ~columns:[ "system"; "avg RTT"; "p99 RTT"; "datapath OS ns/IO" ]
  in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [
          r.system;
          Metrics.Table.cell_ns r.avg_ns;
          Metrics.Table.cell_ns r.p99_ns;
          (match r.datapath_ns_per_io with Some n -> Metrics.Table.cell_ns n | None -> "-");
        ])
    rows;
  Metrics.Table.print table
