type row = { component : string; files : string list; lines : int }

let repo_root () =
  let rec search dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else search parent
  in
  search (Sys.getcwd ())

let count_file path =
  match open_in path with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go n = match input_line ic with _ -> go (n + 1) | exception End_of_file -> n in
      let n = go 0 in
      close_in ic;
      n

let expand root spec =
  (* A spec is a file, or a directory counted recursively (.ml/.mli). *)
  let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli" in
  let path = Filename.concat root spec in
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.filter is_source
    |> List.map (Filename.concat spec)
  else [ spec ]

let make_row root component specs =
  let files = List.concat_map (expand root) specs in
  let lines = List.fold_left (fun n f -> n + count_file (Filename.concat root f)) 0 files in
  { component; files; lines }

let with_root f = match repo_root () with Some root -> f root | None -> []

let table2 () =
  with_root (fun root ->
      [
        make_row root "Catnap (POSIX libOS)"
          [ "lib/demikernel/catnap.ml"; "lib/demikernel/catnap.mli" ];
        make_row root "Catmint (RDMA libOS)"
          [ "lib/demikernel/catmint.ml"; "lib/demikernel/catmint.mli" ];
        make_row root "Catnip (DPDK libOS)"
          [ "lib/demikernel/catnip.ml"; "lib/demikernel/catnip.mli"; "lib/tcp" ];
        make_row root "Cattree (SPDK libOS)"
          [ "lib/demikernel/cattree.ml"; "lib/demikernel/cattree.mli" ];
        make_row root "Shared datapath OS core"
          [
            "lib/demikernel/pdpix.ml"; "lib/demikernel/pdpix.mli";
            "lib/demikernel/runtime.ml"; "lib/demikernel/runtime.mli";
            "lib/demikernel/dsched.ml"; "lib/demikernel/dsched.mli";
            "lib/demikernel/waker.ml"; "lib/demikernel/waker.mli";
            "lib/demikernel/host.ml"; "lib/demikernel/host.mli";
            "lib/demikernel/boot.ml"; "lib/demikernel/boot.mli";
          ];
        make_row root "DMA-capable heap" [ "lib/memory" ];
        make_row root "Devices + fabric (substrate)" [ "lib/net" ];
        make_row root "Legacy kernel path (substrate)" [ "lib/oskernel" ];
        make_row root "Simulation engine (substrate)" [ "lib/engine" ];
      ])

let table3 () =
  with_root (fun root ->
      [
        make_row root "Echo (Demikernel)" [ "lib/apps/echo.ml"; "lib/apps/echo.mli" ];
        make_row root "UDP relay (Demikernel)" [ "lib/apps/relay.ml"; "lib/apps/relay.mli" ];
        make_row root "KV store (Demikernel)" [ "lib/apps/dkv.ml"; "lib/apps/dkv.mli" ];
        make_row root "TxnStore (Demikernel)"
          [ "lib/apps/txnstore.ml"; "lib/apps/txnstore.mli" ];
        make_row root "POSIX versions (all four apps)"
          [ "lib/baselines/linux_apps.ml"; "lib/baselines/linux_apps.mli" ];
        make_row root "TxnStore custom RDMA stack"
          [ "lib/baselines/txn_rdma.ml"; "lib/baselines/txn_rdma.mli" ];
      ])

let print ~title rows =
  let table = Metrics.Table.create ~title ~columns:[ "component"; "files"; "LoC" ] in
  List.iter
    (fun r ->
      Metrics.Table.add_row table
        [ r.component; string_of_int (List.length r.files); string_of_int r.lines ])
    rows;
  Metrics.Table.print table
