lib/harness/common.ml: Apps Baselines Demikernel Engine Metrics Net
