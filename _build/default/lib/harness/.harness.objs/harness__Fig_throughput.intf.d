lib/harness/fig_throughput.mli: Baselines Common Demikernel Net
