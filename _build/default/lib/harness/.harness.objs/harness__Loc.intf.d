lib/harness/loc.mli:
