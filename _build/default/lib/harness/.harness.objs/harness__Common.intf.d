lib/harness/common.mli: Baselines Demikernel Engine Metrics Net
