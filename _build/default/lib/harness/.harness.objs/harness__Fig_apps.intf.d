lib/harness/fig_apps.mli:
