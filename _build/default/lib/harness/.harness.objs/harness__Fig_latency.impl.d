lib/harness/fig_latency.ml: Baselines Common Demikernel List Metrics Net Printf String
