lib/harness/fig_latency.mli: Net
