lib/harness/fig_apps.ml: Apps Baselines Common Demikernel Engine List Metrics Net Oskernel
