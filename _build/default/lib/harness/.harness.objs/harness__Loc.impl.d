lib/harness/loc.ml: Array Filename List Metrics String Sys
