lib/harness/fig_throughput.ml: Apps Baselines Buffer Bytes Common Demikernel Engine List Metrics Net Pdpix String
