(* Tests for the storage-stack extensions: log cursors (seek/truncate,
   §6.4) and crash recovery — a rebooted node re-opens its Cattree logs
   and finds every acked record. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

let world () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  (sim, fabric)

let push_record api log record =
  let buf = api.Demikernel.Pdpix.alloc_str record in
  match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.push log [ buf ]) with
  | Demikernel.Pdpix.Pushed -> api.Demikernel.Pdpix.free buf
  | _ -> failwith "push failed"

let pop_record api log =
  match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.pop log) with
  | Demikernel.Pdpix.Popped sga ->
      let s = Demikernel.Pdpix.sga_to_string sga in
      List.iter api.Demikernel.Pdpix.free sga;
      Some s
  | Demikernel.Pdpix.Failed _ -> None
  | _ -> failwith "pop failed"

let test_seek_rewinds () =
  let sim, fabric = world () in
  let node = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let reads = ref [] in
  Demikernel.Boot.run_app node (fun api ->
      let log = api.Demikernel.Pdpix.open_log "cursor.log" in
      List.iter (push_record api log) [ "one"; "two"; "three" ];
      ignore (pop_record api log);
      ignore (pop_record api log);
      (* Rewind to the start and read everything again. *)
      api.Demikernel.Pdpix.seek log 0;
      let rec all () =
        match pop_record api log with
        | Some r ->
            reads := r :: !reads;
            all ()
        | None -> ()
      in
      all ());
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  Alcotest.(check (list string)) "seek rewound to the start" [ "one"; "two"; "three" ]
    (List.rev !reads)

let test_truncate_garbage_collects () =
  let sim, fabric = world () in
  let node = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let reads = ref [] in
  Demikernel.Boot.run_app node (fun api ->
      let log = api.Demikernel.Pdpix.open_log "gc.log" in
      List.iter (push_record api log) [ "old-a"; "old-b"; "kept" ];
      (* Records are framed as [u32 len][payload]: the first two occupy
         (4+5)*2 = 18 bytes. *)
      api.Demikernel.Pdpix.truncate log 18;
      api.Demikernel.Pdpix.seek log 0;
      let rec all () =
        match pop_record api log with
        | Some r ->
            reads := r :: !reads;
            all ()
        | None -> ()
      in
      all ());
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  Alcotest.(check (list string)) "truncated records unreadable" [ "kept" ] (List.rev !reads)

let test_cattree_recovery_after_reboot () =
  let sim, fabric = world () in
  let node1 = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let wrote = ref false in
  Demikernel.Boot.run_app node1 (fun api ->
      let log = api.Demikernel.Pdpix.open_log "wal" in
      List.iter (push_record api log) [ "first"; "second"; "third" ];
      wrote := true);
  Demikernel.Boot.start node1;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "writer finished" true !wrote;
  (* Fail-stop, then "reboot": a fresh node over the same device. *)
  Demikernel.Boot.crash node1;
  let ssd = match node1.Demikernel.Boot.ssd with Some s -> s | None -> assert false in
  let node2 = Demikernel.Boot.make sim fabric ~index:5 ~ssd Demikernel.Boot.Catnip_os in
  let recovered = ref [] in
  Demikernel.Boot.run_app node2 (fun api ->
      let log = api.Demikernel.Pdpix.open_log "wal" in
      let rec all () =
        match pop_record api log with
        | Some r ->
            recovered := r :: !recovered;
            all ()
        | None -> ()
      in
      all ();
      (* The recovered log must also accept new appends after the old
         tail. *)
      push_record api log "fourth";
      match pop_record api log with Some r -> recovered := r :: !recovered | None -> ());
  Demikernel.Boot.start node2;
  Engine.Sim.run ~until:(Engine.Clock.s 4) sim;
  Alcotest.(check (list string)) "all records recovered in order"
    [ "first"; "second"; "third"; "fourth" ]
    (List.rev !recovered)

let test_dkv_crash_recovery () =
  (* End to end: a KV server persists SETs; a replacement server booted
     on the crashed server's device serves the same data. *)
  let sim, fabric = world () in
  let server1 = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let client1 = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server1 (Apps.Dkv.server ~port:6379 ~persist:true);
  let acked = ref false in
  Demikernel.Boot.run_app client1 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server1 6379) in
      assert (Apps.Dkv.set c "account" "42" = Apps.Dkv.Ok);
      assert (Apps.Dkv.set c "city" "redmond" = Apps.Dkv.Ok);
      assert (Apps.Dkv.set c "account" "43" = Apps.Dkv.Ok) (* overwrite *);
      Apps.Dkv.client_close c;
      acked := true);
  Demikernel.Boot.start server1;
  Demikernel.Boot.start client1;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "sets acked" true !acked;
  (* Crash; replacement server on the same device at a new address. *)
  Demikernel.Boot.crash server1;
  let ssd = match server1.Demikernel.Boot.ssd with Some s -> s | None -> assert false in
  let server2 = Demikernel.Boot.make sim fabric ~index:6 ~ssd Demikernel.Boot.Catnip_os in
  let client2 = Demikernel.Boot.make sim fabric ~index:7 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server2 (Apps.Dkv.server ~port:6379 ~persist:true);
  let results = ref [] in
  Demikernel.Boot.run_app client2 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server2 6379) in
      results := [ Apps.Dkv.get c "account"; Apps.Dkv.get c "city" ];
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server2;
  Demikernel.Boot.start client2;
  Engine.Sim.run ~until:(Engine.Clock.s 6) sim;
  match !results with
  | [ account; city ] ->
      check_bool "latest account value survived" true (account = (Apps.Dkv.Ok, "43"));
      check_bool "city survived" true (city = (Apps.Dkv.Ok, "redmond"))
  | _ -> Alcotest.fail "client did not run"

let test_aof_compaction_and_recovery () =
  (* Hammer a handful of keys so the AOF grows far beyond the live data:
     the server must compact (persisting the truncation floor), and a
     rebooted replacement must recover the latest values from the
     snapshot. *)
  let sim, fabric = world () in
  let server1 = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let client1 = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server1 (Apps.Dkv.server ~port:6379 ~persist:true);
  let rounds = 300 in
  Demikernel.Boot.run_app client1 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server1 6379) in
      for i = 1 to rounds do
        assert (Apps.Dkv.set c (Printf.sprintf "k%d" (i mod 4)) (String.make 1000 'v') = Apps.Dkv.Ok)
      done;
      assert (Apps.Dkv.set c "final" "sentinel" = Apps.Dkv.Ok);
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server1;
  Demikernel.Boot.start client1;
  Engine.Sim.run ~until:(Engine.Clock.s 10) sim;
  let ssd = match server1.Demikernel.Boot.ssd with Some s -> s | None -> assert false in
  (* The persisted superblock floor moved: compaction really truncated. *)
  let sb = Net.Ssd_sim.contents ssd ~off:0 ~len:8 in
  let start = Net.Wire.get_u32 (Bytes.unsafe_of_string sb) 4 in
  check_bool (Printf.sprintf "truncation floor persisted (start=%d)" start) true (start > 8);
  Demikernel.Boot.crash server1;
  let server2 = Demikernel.Boot.make sim fabric ~index:6 ~ssd Demikernel.Boot.Catnip_os in
  let client2 = Demikernel.Boot.make sim fabric ~index:7 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server2 (Apps.Dkv.server ~port:6379 ~persist:true);
  let ok = ref 0 in
  Demikernel.Boot.run_app client2 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server2 6379) in
      for i = 0 to 3 do
        match Apps.Dkv.get c (Printf.sprintf "k%d" i) with
        | Apps.Dkv.Ok, v when String.length v = 1000 -> incr ok
        | _ -> ()
      done;
      (match Apps.Dkv.get c "final" with
      | Apps.Dkv.Ok, "sentinel" -> incr ok
      | _ -> ());
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server2;
  Demikernel.Boot.start client2;
  Engine.Sim.run ~until:(Engine.Clock.s 20) sim;
  check_int "all keys recovered through the snapshot" 5 !ok

let test_catnap_dkv_crash_recovery () =
  (* The same crash-recovery story on the kernel path: Catnap's log is
     an ext4-style file read back with pread. *)
  let sim, fabric = world () in
  let server1 = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnap_os in
  let client1 = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnap_os in
  Demikernel.Boot.run_app server1 (Apps.Dkv.server ~port:6379 ~persist:true);
  let acked = ref false in
  Demikernel.Boot.run_app client1 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server1 6379) in
      assert (Apps.Dkv.set c "durable" "yes" = Apps.Dkv.Ok);
      Apps.Dkv.client_close c;
      acked := true);
  Demikernel.Boot.start server1;
  Demikernel.Boot.start client1;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "acked" true !acked;
  Demikernel.Boot.crash server1;
  let ssd = match server1.Demikernel.Boot.ssd with Some s -> s | None -> assert false in
  let server2 = Demikernel.Boot.make sim fabric ~index:6 ~ssd Demikernel.Boot.Catnap_os in
  let client2 = Demikernel.Boot.make sim fabric ~index:7 Demikernel.Boot.Catnap_os in
  Demikernel.Boot.run_app server2 (Apps.Dkv.server ~port:6379 ~persist:true);
  let got = ref None in
  Demikernel.Boot.run_app client2 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server2 6379) in
      got := Some (Apps.Dkv.get c "durable");
      (* Appends after a reboot must land past the recovered tail, not
         clobber it. *)
      assert (Apps.Dkv.set c "post-reboot" "also" = Apps.Dkv.Ok);
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server2;
  Demikernel.Boot.start client2;
  Engine.Sim.run ~until:(Engine.Clock.s 6) sim;
  check_bool "recovered on the kernel path" true (!got = Some (Apps.Dkv.Ok, "yes"));
  (* Third boot sees both records. *)
  Demikernel.Boot.crash server2;
  let server3 = Demikernel.Boot.make sim fabric ~index:8 ~ssd Demikernel.Boot.Catnap_os in
  let client3 = Demikernel.Boot.make sim fabric ~index:9 Demikernel.Boot.Catnap_os in
  Demikernel.Boot.run_app server3 (Apps.Dkv.server ~port:6379 ~persist:true);
  let got3 = ref [] in
  Demikernel.Boot.run_app client3 (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server3 6379) in
      got3 := [ Apps.Dkv.get c "durable"; Apps.Dkv.get c "post-reboot" ];
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server3;
  Demikernel.Boot.start client3;
  Engine.Sim.run ~until:(Engine.Clock.s 10) sim;
  check_bool "both generations survive" true
    (!got3 = [ (Apps.Dkv.Ok, "yes"); (Apps.Dkv.Ok, "also") ])

let test_seek_bounds_checked () =
  let sim, fabric = world () in
  let node = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:true Demikernel.Boot.Catnip_os in
  let raised = ref false in
  Demikernel.Boot.run_app node (fun api ->
      let log = api.Demikernel.Pdpix.open_log "bounds.log" in
      match api.Demikernel.Pdpix.seek log (-1) with
      | () -> ()
      | exception Invalid_argument _ -> raised := true);
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_bool "negative seek rejected" true !raised

let test_net_libos_rejects_log_calls () =
  let sim, fabric = world () in
  let node = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let raised = ref 0 in
  Demikernel.Boot.run_app node (fun api ->
      (try ignore (api.Demikernel.Pdpix.open_log "nope") with Demikernel.Pdpix.Unsupported _ -> incr raised);
      (try api.Demikernel.Pdpix.seek 1 0 with Demikernel.Pdpix.Unsupported _ -> incr raised);
      try api.Demikernel.Pdpix.truncate 1 0 with Demikernel.Pdpix.Unsupported _ -> incr raised);
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_int "all three unsupported" 3 !raised

let suite =
  [
    Alcotest.test_case "seek rewinds the read cursor" `Quick test_seek_rewinds;
    Alcotest.test_case "truncate garbage-collects" `Quick test_truncate_garbage_collects;
    Alcotest.test_case "cattree recovers after reboot" `Quick test_cattree_recovery_after_reboot;
    Alcotest.test_case "dkv crash recovery end-to-end" `Quick test_dkv_crash_recovery;
    Alcotest.test_case "AOF compaction + recovery" `Quick test_aof_compaction_and_recovery;
    Alcotest.test_case "catnap dkv crash recovery" `Quick test_catnap_dkv_crash_recovery;
    Alcotest.test_case "seek bounds checked" `Quick test_seek_bounds_checked;
    Alcotest.test_case "network libOS rejects log calls" `Quick test_net_libos_rejects_log_calls;
  ]
