(* Tests for wire formats, the fabric, and the simulated devices. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- wire formats --- *)

let test_u48_roundtrip () =
  let b = Bytes.create 6 in
  let v = 0x0200_1234_5678 in
  Net.Wire.set_u48 b 0 v;
  check_int "u48" v (Net.Wire.get_u48 b 0)

let test_checksum_rfc1071 () =
  (* Worked example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check_int "rfc1071 example" (lnot 0xddf2 land 0xffff) (Net.Wire.checksum b 0 8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* 0x0102 + 0x0300 = 0x0402 -> complement. *)
  check_int "odd tail padded" (lnot 0x0402 land 0xffff) (Net.Wire.checksum b 0 3)

let test_eth_roundtrip () =
  let b = Bytes.create 64 in
  let h = { Net.Eth.dst = Net.Addr.Mac.of_index 2; src = Net.Addr.Mac.of_index 1;
            ethertype = Net.Eth.ethertype_ipv4 } in
  let off = Net.Eth.write b 0 h in
  check_int "header size" Net.Eth.size off;
  let h', off' = Net.Eth.read b 0 in
  check_bool "roundtrip" true (h = h');
  check_int "payload offset" Net.Eth.size off'

let test_arp_roundtrip () =
  let b = Bytes.create 64 in
  let p =
    {
      Net.Arp.operation = Net.Arp.Request;
      sender_mac = Net.Addr.Mac.of_index 1;
      sender_ip = Net.Addr.Ip.of_index 1;
      target_mac = 0;
      target_ip = Net.Addr.Ip.of_index 2;
    }
  in
  let _ = Net.Arp.write b 0 p in
  let p', _ = Net.Arp.read b 0 in
  check_bool "roundtrip" true (p = p')

let ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 header roundtrip" ~count:200
    QCheck.(quad (int_bound 0xffff) (int_range 1 255) (int_bound 0xff) (int_bound 0xffffffff))
    (fun (identification, ttl, proto_raw, src) ->
      let h =
        {
          Net.Ipv4.total_length = 20 + 100;
          identification;
          ttl;
          protocol = proto_raw;
          src;
          dst = Net.Addr.Ip.of_index 7;
          more_fragments = false;
          fragment_offset = 0;
        }
      in
      let b = Bytes.create 200 in
      let _ = Net.Ipv4.write b 0 h in
      let h', off = Net.Ipv4.read b 0 in
      h = h' && off = Net.Ipv4.size)

let test_ipv4_checksum_detects_corruption () =
  let h =
    Net.Ipv4.whole ~total_length:40 ~identification:9 ~protocol:Net.Ipv4.protocol_udp ~src:1
      ~dst:2
  in
  let b = Bytes.create 64 in
  let _ = Net.Ipv4.write b 0 h in
  Net.Wire.set_u8 b 8 65 (* flip the ttl *);
  Alcotest.check_raises "corruption detected" (Net.Wire.Malformed "ipv4: bad checksum")
    (fun () -> ignore (Net.Ipv4.read b 0))

let udp_roundtrip =
  QCheck.Test.make ~name:"udp header+payload roundtrip" ~count:200
    QCheck.(triple (int_bound 0xffff) (int_bound 0xffff) (string_of_size (Gen.int_range 0 512)))
    (fun (src_port, dst_port, payload) ->
      let src_ip = Net.Addr.Ip.of_index 1 and dst_ip = Net.Addr.Ip.of_index 2 in
      let len = Net.Udp_wire.size + String.length payload in
      let b = Bytes.create (len + 8) in
      Bytes.blit_string payload 0 b Net.Udp_wire.size (String.length payload);
      let h = { Net.Udp_wire.src_port; dst_port; length = len } in
      let off = Net.Udp_wire.write b 0 h ~src_ip ~dst_ip in
      let h', off' = Net.Udp_wire.read b 0 ~src_ip ~dst_ip in
      h = h' && off = off'
      && Bytes.sub_string b off' (h'.Net.Udp_wire.length - Net.Udp_wire.size) = payload)

let test_udp_checksum_detects_corruption () =
  let src_ip = 1 and dst_ip = 2 in
  let payload = "hello" in
  let len = Net.Udp_wire.size + String.length payload in
  let b = Bytes.create len in
  Bytes.blit_string payload 0 b Net.Udp_wire.size (String.length payload);
  let _ = Net.Udp_wire.write b 0 { Net.Udp_wire.src_port = 1; dst_port = 2; length = len } ~src_ip ~dst_ip in
  Bytes.set b (len - 1) 'x';
  Alcotest.check_raises "bad checksum" (Net.Wire.Malformed "udp: bad checksum") (fun () ->
      ignore (Net.Udp_wire.read b 0 ~src_ip ~dst_ip))

let tcp_gen =
  QCheck.Gen.(
    let* src_port = int_bound 0xffff in
    let* dst_port = int_bound 0xffff in
    let* seq = int_bound 0xffffffff in
    let* ack = int_bound 0xffffffff in
    let* syn = bool in
    let* ack_flag = bool in
    let* fin = bool in
    let* psh = bool in
    let* window = int_bound 0xffff in
    let* mss = opt (int_bound 0xffff) in
    let* wscale = opt (int_bound 14) in
    let* ts = opt (pair (int_bound 0xffffffff) (int_bound 0xffffffff)) in
    let* sack_permitted = bool in
    let* sack_blocks =
      list_size (int_bound 3) (pair (int_bound 0xffffffff) (int_bound 0xffffffff))
    in
    (* Keep the header within the 60-byte limit: SACK blocks never ride
       with the SYN-only options (mirrors real segments). *)
    let mss = if sack_blocks = [] then mss else None in
    let wscale = if sack_blocks = [] then wscale else None in
    let sack_permitted = sack_permitted && sack_blocks = [] in
    let* payload = string_size (int_range 0 256) in
    return
      ( {
          Net.Tcp_wire.src_port;
          dst_port;
          seq;
          ack;
          syn;
          ack_flag;
          fin;
          rst = false;
          psh;
          window;
          options =
            {
              Net.Tcp_wire.mss;
              window_scale = wscale;
              timestamp = ts;
              sack_permitted;
              sack_blocks;
            };
        },
        payload ))

let tcp_roundtrip =
  QCheck.Test.make ~name:"tcp header+options roundtrip" ~count:300
    (QCheck.make tcp_gen) (fun (h, payload) ->
      let src_ip = Net.Addr.Ip.of_index 3 and dst_ip = Net.Addr.Ip.of_index 4 in
      let hsize = Net.Tcp_wire.header_size h in
      let seg_len = hsize + String.length payload in
      let b = Bytes.create (seg_len + 16) in
      Bytes.blit_string payload 0 b hsize (String.length payload);
      let off = Net.Tcp_wire.write b 0 h ~payload_len:(String.length payload) ~src_ip ~dst_ip in
      let h', off' = Net.Tcp_wire.read b 0 ~seg_len ~src_ip ~dst_ip in
      h = h' && off = off' && Bytes.sub_string b off' (seg_len - off') = payload)

let test_tcp_checksum_detects_corruption () =
  let h =
    {
      Net.Tcp_wire.src_port = 80; dst_port = 8080; seq = 1; ack = 2; syn = false;
      ack_flag = true; fin = false; rst = false; psh = true; window = 1000;
      options = Net.Tcp_wire.no_options;
    }
  in
  let b = Bytes.create 64 in
  let _ = Net.Tcp_wire.write b 0 h ~payload_len:4 ~src_ip:1 ~dst_ip:2 in
  Net.Wire.set_u32 b 4 999 (* corrupt seq *);
  Alcotest.check_raises "bad checksum" (Net.Wire.Malformed "tcp: bad checksum") (fun () ->
      ignore (Net.Tcp_wire.read b 0 ~seg_len:24 ~src_ip:1 ~dst_ip:2))

(* --- fabric --- *)

let bare = Net.Cost.bare_metal

let eth_frame ~dst ~src payload =
  let b = Bytes.create (Net.Eth.size + String.length payload) in
  let off = Net.Eth.write b 0 { Net.Eth.dst; src; ethertype = 0x0800 } in
  Bytes.blit_string payload 0 b off (String.length payload);
  Bytes.unsafe_to_string b

let test_fabric_unicast () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let m1 = Net.Addr.Mac.of_index 1 and m2 = Net.Addr.Mac.of_index 2 in
  let got = ref [] in
  let p1 = Net.Fabric.attach fabric ~mac:m1 ~rx:(fun _ -> got := `P1 :: !got) in
  let _p2 = Net.Fabric.attach fabric ~mac:m2 ~rx:(fun _ -> got := `P2 :: !got) in
  Net.Fabric.send fabric p1 (eth_frame ~dst:m2 ~src:m1 "hi");
  Engine.Sim.run sim;
  Alcotest.(check bool) "delivered to p2 only" true (!got = [ `P2 ]);
  check_int "stats" 1 (Net.Fabric.stats fabric).frames_delivered

let test_fabric_broadcast () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let got = ref 0 in
  let mk i = Net.Fabric.attach fabric ~mac:(Net.Addr.Mac.of_index i) ~rx:(fun _ -> incr got) in
  let p1 = mk 1 in
  let _ = mk 2 and _ = mk 3 in
  Net.Fabric.send fabric p1 (eth_frame ~dst:Net.Addr.Mac.broadcast ~src:(Net.Addr.Mac.of_index 1) "arp");
  Engine.Sim.run sim;
  check_int "everyone but sender" 2 !got

let test_fabric_latency () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let m1 = Net.Addr.Mac.of_index 1 and m2 = Net.Addr.Mac.of_index 2 in
  let arrived = ref 0 in
  let p1 = Net.Fabric.attach fabric ~mac:m1 ~rx:(fun _ -> ()) in
  let _ = Net.Fabric.attach fabric ~mac:m2 ~rx:(fun _ -> arrived := Engine.Sim.now sim) in
  let frame = eth_frame ~dst:m2 ~src:m1 (String.make 50 'x') in
  Net.Fabric.send fabric p1 frame;
  Engine.Sim.run sim;
  let expect =
    (* Store-and-forward: serialization onto the sender's link and again
       onto the receiver's. *)
    (2 * Net.Cost.serialization_ns bare (String.length frame))
    + bare.Net.Cost.propagation_ns + bare.Net.Cost.switch_ns
  in
  check_int "arrival time" expect !arrived

let test_fabric_serialization_queueing () =
  (* Two back-to-back frames: the second waits for the first to leave. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let m1 = Net.Addr.Mac.of_index 1 and m2 = Net.Addr.Mac.of_index 2 in
  let times = ref [] in
  let p1 = Net.Fabric.attach fabric ~mac:m1 ~rx:(fun _ -> ()) in
  let _ = Net.Fabric.attach fabric ~mac:m2 ~rx:(fun _ -> times := Engine.Sim.now sim :: !times) in
  let frame = eth_frame ~dst:m2 ~src:m1 (String.make 1000 'x') in
  Net.Fabric.send fabric p1 frame;
  Net.Fabric.send fabric p1 frame;
  Engine.Sim.run sim;
  match List.rev !times with
  | [ t1; t2 ] ->
      check_int "gap is one serialization" (Net.Cost.serialization_ns bare (String.length frame)) (t2 - t1)
  | _ -> Alcotest.fail "expected two arrivals"

let test_fabric_loss () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare ~loss:1.0 () in
  let m1 = Net.Addr.Mac.of_index 1 and m2 = Net.Addr.Mac.of_index 2 in
  let got = ref 0 in
  let p1 = Net.Fabric.attach fabric ~mac:m1 ~rx:(fun _ -> ()) in
  let _ = Net.Fabric.attach fabric ~mac:m2 ~rx:(fun _ -> incr got) in
  Net.Fabric.send fabric p1 (eth_frame ~dst:m2 ~src:m1 "drop me");
  Net.Fabric.send fabric p1 ~lossless:true (eth_frame ~dst:m2 ~src:m1 "keep me");
  Engine.Sim.run sim;
  check_int "lossless survives full loss" 1 !got;
  check_int "lossy dropped" 1 (Net.Fabric.stats fabric).frames_dropped

(* --- dpdk device --- *)

let test_dpdk_tx_rx () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let nic1 =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1) ()
  in
  let nic2 =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index 2) ~ip:(Net.Addr.Ip.of_index 2) ()
  in
  let frame = eth_frame ~dst:(Net.Dpdk_sim.mac nic2) ~src:(Net.Dpdk_sim.mac nic1) "ping" in
  Net.Dpdk_sim.tx_burst nic1 [ frame ];
  Engine.Sim.run sim;
  check_int "one frame in ring" 1 (Net.Dpdk_sim.rx_pending nic2);
  match Net.Dpdk_sim.rx_burst nic2 ~max:8 with
  | [ got ] -> Alcotest.(check string) "frame intact" frame got
  | _ -> Alcotest.fail "expected one frame"

let test_dpdk_ring_overflow () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let nic1 =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1) ()
  in
  let nic2 =
    Net.Dpdk_sim.create fabric ~mac:(Net.Addr.Mac.of_index 2) ~ip:(Net.Addr.Ip.of_index 2)
      ~rx_ring_size:4 ()
  in
  let frame = eth_frame ~dst:(Net.Dpdk_sim.mac nic2) ~src:(Net.Dpdk_sim.mac nic1) "x" in
  Net.Dpdk_sim.tx_burst nic1 (List.init 10 (fun _ -> frame));
  Engine.Sim.run sim;
  check_int "ring capped" 4 (Net.Dpdk_sim.rx_pending nic2);
  check_int "rest dropped" 6 (Net.Dpdk_sim.rx_dropped nic2)

(* --- rdma device --- *)

let rdma_pair () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let r1 =
    Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1) ()
  in
  let r2 =
    Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index 2) ~ip:(Net.Addr.Ip.of_index 2) ()
  in
  (sim, r1, r2)

let test_rdma_send_recv () =
  let sim, r1, r2 = rdma_pair () in
  Net.Rdma_sim.post_recv r2;
  Net.Rdma_sim.post_send r1 ~dst:(Net.Rdma_sim.mac r2) ~wr_id:7 ~imm:42 "payload";
  Engine.Sim.run sim;
  (match Net.Rdma_sim.poll_cq r1 ~max:4 with
  | [ Net.Rdma_sim.Send_done { wr_id } ] -> check_int "send completion" 7 wr_id
  | _ -> Alcotest.fail "expected send completion");
  match Net.Rdma_sim.poll_cq r2 ~max:4 with
  | [ Net.Rdma_sim.Recv { imm; payload; src_mac } ] ->
      check_int "imm" 42 imm;
      Alcotest.(check string) "payload" "payload" payload;
      check_int "src" (Net.Rdma_sim.mac r1) src_mac
  | _ -> Alcotest.fail "expected recv completion"

let test_rdma_rnr_drop () =
  let sim, r1, r2 = rdma_pair () in
  Net.Rdma_sim.post_send r1 ~dst:(Net.Rdma_sim.mac r2) ~wr_id:1 ~imm:0 "no buffer posted";
  Engine.Sim.run sim;
  check_int "rnr drop" 1 (Net.Rdma_sim.rnr_drops r2);
  check_int "no recv completion" 0 (Net.Rdma_sim.cq_pending r2)

let test_rdma_ordering () =
  let sim, r1, r2 = rdma_pair () in
  for _ = 1 to 10 do Net.Rdma_sim.post_recv r2 done;
  for i = 1 to 10 do
    Net.Rdma_sim.post_send r1 ~dst:(Net.Rdma_sim.mac r2) ~wr_id:i ~imm:i (string_of_int i)
  done;
  Engine.Sim.run sim;
  let imms =
    List.filter_map
      (function Net.Rdma_sim.Recv { imm; _ } -> Some imm | _ -> None)
      (Net.Rdma_sim.poll_cq r2 ~max:100)
  in
  Alcotest.(check (list int)) "ordered delivery" (List.init 10 (fun i -> i + 1)) imms

let test_rdma_one_sided_write () =
  let sim, r1, r2 = rdma_pair () in
  let region = Bytes.make 16 '.' in
  let rkey = Net.Rdma_sim.register_region r2 region in
  Net.Rdma_sim.post_write r1 ~dst:(Net.Rdma_sim.mac r2) ~wr_id:3 ~rkey ~offset:4 "ABCD";
  Engine.Sim.run sim;
  Alcotest.(check string) "remote memory updated" "....ABCD........" (Bytes.to_string region);
  (match Net.Rdma_sim.poll_cq r1 ~max:4 with
  | [ Net.Rdma_sim.Write_done { wr_id; ok } ] ->
      check_int "wr_id" 3 wr_id;
      check_bool "ok" true ok
  | _ -> Alcotest.fail "expected write completion");
  check_int "target cq silent" 0 (Net.Rdma_sim.cq_pending r2)

let test_rdma_write_bad_rkey () =
  let sim, r1, r2 = rdma_pair () in
  Net.Rdma_sim.post_write r1 ~dst:(Net.Rdma_sim.mac r2) ~wr_id:9 ~rkey:999 ~offset:0 "x";
  Engine.Sim.run sim;
  match Net.Rdma_sim.poll_cq r1 ~max:4 with
  | [ Net.Rdma_sim.Write_done { ok; _ } ] -> check_bool "failed" false ok
  | _ -> Alcotest.fail "expected write completion"

(* --- ssd device --- *)

let test_ssd_write_read () =
  let sim = Engine.Sim.create () in
  let ssd = Net.Ssd_sim.create sim ~cost:bare ~capacity:4096 in
  Net.Ssd_sim.submit_write ssd ~id:1 ~off:100 "persist me";
  Engine.Sim.run sim;
  (match Net.Ssd_sim.poll_cq ssd ~max:4 with
  | [ { Net.Ssd_sim.id = 1; ok = true; _ } ] -> ()
  | _ -> Alcotest.fail "expected write completion");
  Net.Ssd_sim.submit_read ssd ~id:2 ~off:100 ~len:10;
  Engine.Sim.run sim;
  match Net.Ssd_sim.poll_cq ssd ~max:4 with
  | [ { Net.Ssd_sim.id = 2; ok = true; data } ] ->
      Alcotest.(check string) "read back" "persist me" data
  | _ -> Alcotest.fail "expected read completion"

let test_ssd_latency () =
  let sim = Engine.Sim.create () in
  let ssd = Net.Ssd_sim.create sim ~cost:bare ~capacity:4096 in
  Net.Ssd_sim.submit_write ssd ~id:1 ~off:0 (String.make 100 'x');
  Engine.Sim.run sim;
  check_int "optane-class write latency" (Net.Cost.ssd_op_ns bare ~write:true 100)
    (Engine.Sim.now sim)

let test_ssd_out_of_bounds () =
  let sim = Engine.Sim.create () in
  let ssd = Net.Ssd_sim.create sim ~cost:bare ~capacity:64 in
  Net.Ssd_sim.submit_write ssd ~id:1 ~off:60 "too long for the device";
  Engine.Sim.run sim;
  match Net.Ssd_sim.poll_cq ssd ~max:4 with
  | [ { Net.Ssd_sim.ok = false; _ } ] -> ()
  | _ -> Alcotest.fail "expected failed completion"

let test_ssd_serializes_commands () =
  let sim = Engine.Sim.create () in
  let ssd = Net.Ssd_sim.create sim ~cost:bare ~capacity:4096 in
  Net.Ssd_sim.submit_write ssd ~id:1 ~off:0 (String.make 64 'a');
  Net.Ssd_sim.submit_write ssd ~id:2 ~off:64 (String.make 64 'b');
  Engine.Sim.run sim;
  let expect = 2 * Net.Cost.ssd_op_ns bare ~write:true 64 in
  check_int "second waits for first" expect (Engine.Sim.now sim)

let suite =
  [
    Alcotest.test_case "u48 roundtrip" `Quick test_u48_roundtrip;
    Alcotest.test_case "checksum rfc1071 example" `Quick test_checksum_rfc1071;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "ethernet roundtrip" `Quick test_eth_roundtrip;
    Alcotest.test_case "arp roundtrip" `Quick test_arp_roundtrip;
    QCheck_alcotest.to_alcotest ipv4_roundtrip;
    Alcotest.test_case "ipv4 checksum detects corruption" `Quick test_ipv4_checksum_detects_corruption;
    QCheck_alcotest.to_alcotest udp_roundtrip;
    Alcotest.test_case "udp checksum detects corruption" `Quick test_udp_checksum_detects_corruption;
    QCheck_alcotest.to_alcotest tcp_roundtrip;
    Alcotest.test_case "tcp checksum detects corruption" `Quick test_tcp_checksum_detects_corruption;
    Alcotest.test_case "fabric unicast" `Quick test_fabric_unicast;
    Alcotest.test_case "fabric broadcast" `Quick test_fabric_broadcast;
    Alcotest.test_case "fabric latency model" `Quick test_fabric_latency;
    Alcotest.test_case "fabric serialization queueing" `Quick test_fabric_serialization_queueing;
    Alcotest.test_case "fabric loss spares lossless class" `Quick test_fabric_loss;
    Alcotest.test_case "dpdk tx/rx" `Quick test_dpdk_tx_rx;
    Alcotest.test_case "dpdk rx ring overflow" `Quick test_dpdk_ring_overflow;
    Alcotest.test_case "rdma send/recv" `Quick test_rdma_send_recv;
    Alcotest.test_case "rdma rnr drop without recv buffer" `Quick test_rdma_rnr_drop;
    Alcotest.test_case "rdma ordered delivery" `Quick test_rdma_ordering;
    Alcotest.test_case "rdma one-sided write" `Quick test_rdma_one_sided_write;
    Alcotest.test_case "rdma write with bad rkey" `Quick test_rdma_write_bad_rkey;
    Alcotest.test_case "ssd write/read" `Quick test_ssd_write_read;
    Alcotest.test_case "ssd latency model" `Quick test_ssd_latency;
    Alcotest.test_case "ssd bounds check" `Quick test_ssd_out_of_bounds;
    Alcotest.test_case "ssd serializes commands" `Quick test_ssd_serializes_commands;
  ]
