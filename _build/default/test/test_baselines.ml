(* Tests for the comparison systems and the experiment harness: the
   point is not absolute numbers but that every system completes its
   workload and the paper's orderings hold. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

let mean_rtt f =
  let hist = f () in
  (Metrics.Histogram.count hist, int_of_float (Metrics.Histogram.mean hist))

let test_raw_echoes () =
  let n_dpdk, dpdk = mean_rtt (fun () -> Harness.Common.raw_dpdk_rtt ~count:100 ()) in
  let n_rdma, rdma = mean_rtt (fun () -> Harness.Common.raw_rdma_rtt ~count:100 ()) in
  check_int "dpdk count" 100 n_dpdk;
  check_int "rdma count" 100 n_rdma;
  check_bool "raw rdma beats raw dpdk (device offload)" true (rdma < dpdk);
  (* Both are single-digit microseconds on the bare-metal profile. *)
  check_bool "dpdk in range" true (dpdk > 2_000 && dpdk < 10_000);
  check_bool "rdma in range" true (rdma > 1_500 && rdma < 8_000)

let test_kb_lib_orderings () =
  let _, erpc = mean_rtt (fun () -> Harness.Common.kb_echo_rtt ~count:100 Baselines.Kb_lib.erpc) in
  let _, shen =
    mean_rtt (fun () -> Harness.Common.kb_echo_rtt ~count:100 Baselines.Kb_lib.shenango)
  in
  let _, cala =
    mean_rtt (fun () -> Harness.Common.kb_echo_rtt ~count:100 Baselines.Kb_lib.caladan)
  in
  check_bool "erpc < caladan" true (erpc < cala);
  check_bool "caladan < shenango (IOKernel hops)" true (cala < shen)

let test_open_loop_tracks_offered () =
  let w = Harness.Common.make_world () in
  let result = ref None in
  Baselines.Kb_lib.echo_open_loop Baselines.Kb_lib.caladan w.Harness.Common.sim
    w.Harness.Common.fabric ~server_index:1 ~client_index:2 ~msg_size:64
    ~rate_per_sec:100_000. ~duration_ns:5_000_000 (fun r -> result := Some r);
  Harness.Common.run_world w;
  match !result with
  | Some r ->
      check_bool "achieved within 15% of offered" true
        (Float.abs (r.Baselines.Kb_lib.achieved_per_sec -. 100_000.) < 15_000.)
  | None -> Alcotest.fail "no result"

let test_linux_echo () =
  let hist = Harness.Common.linux_echo_rtt ~count:50 ~proto:Harness.Common.Echo_udp () in
  check_int "count" 50 (Metrics.Histogram.count hist);
  (* Kernel path: tens of microseconds. *)
  check_bool "kernel echo slow" true (Metrics.Histogram.p50 hist > 15_000)

let test_linux_tcp_echo () =
  let hist = Harness.Common.linux_echo_rtt ~count:50 ~proto:Harness.Common.Echo_tcp () in
  check_int "count" 50 (Metrics.Histogram.count hist)

let test_fig5_orderings () =
  Harness.Common.default_count := 200;
  let rows = Harness.Fig_latency.fig5 () in
  check_int "ten systems" 10 (List.length rows);
  let avg name =
    (List.find (fun r -> r.Harness.Fig_latency.system = name) rows).Harness.Fig_latency.avg_ns
  in
  (* The paper's headline orderings. *)
  check_bool "linux is worst" true
    (List.for_all (fun r -> avg "Linux" >= r.Harness.Fig_latency.avg_ns) rows);
  check_bool "catnap beats linux" true (avg "Catnap" < avg "Linux");
  check_bool "kernel bypass beats catnap" true (avg "Catnip (TCP)" < avg "Catnap");
  check_bool "catnip udp beats catnip tcp" true (avg "Catnip (UDP)" < avg "Catnip (TCP)");
  check_bool "catmint beats catnip (device offload)" true (avg "Catmint" < avg "Catnip (UDP)");
  check_bool "raw rdma is the floor" true
    (List.for_all (fun r -> avg "Raw RDMA" <= r.Harness.Fig_latency.avg_ns) rows)

let test_fig6_windows_gap () =
  Harness.Common.default_count := 100;
  let rows = Harness.Fig_latency.fig6_windows () in
  let avg name =
    (List.find (fun r -> r.Harness.Fig_latency.system = name) rows).Harness.Fig_latency.avg_ns
  in
  (* Catpaw's RDMA bypass dwarfs WSL's kernel path (§7.3: ~27x). *)
  check_bool "catpaw at least 10x better than WSL linux" true
    (avg "Linux (WSL)" > 10 * avg "Catpaw (RDMA)")

let test_fig7_persistence_cheaper_than_linux_memory () =
  (* The paper's headline: remote disk via Demikernel is faster than
     remote memory via the kernel. *)
  Harness.Common.default_count := 100;
  let fig7 = Harness.Fig_latency.fig7 () in
  let catnip_disk =
    (List.find (fun r -> r.Harness.Fig_latency.system = "Catnip (TCP) x Cattree") fig7)
      .Harness.Fig_latency.avg_ns
  in
  let linux_memory =
    Metrics.Histogram.mean (Harness.Common.linux_echo_rtt ~count:100 ~proto:Harness.Common.Echo_udp ())
  in
  check_bool
    (Printf.sprintf "catnip+disk (%d) < linux in-memory (%.0f)" catnip_disk linux_memory)
    true
    (float_of_int catnip_disk < linux_memory)

let test_txn_rdma_completes () =
  let w = Harness.Common.make_world () in
  List.iter
    (fun i -> Baselines.Txn_rdma.replica w.Harness.Common.sim w.Harness.Common.fabric ~index:i)
    [ 1; 2; 3 ];
  let hist = Metrics.Histogram.create () in
  let finished = ref false in
  Baselines.Txn_rdma.ycsb_client w.Harness.Common.sim w.Harness.Common.fabric ~index:4
    ~replica_indexes:[ 1; 2; 3 ] ~keys:20 ~value_size:128 ~txns:50 ~theta:0.99 ~seed:3
    ~record:(Metrics.Histogram.add hist)
    ~on_done:(fun () -> finished := true);
  Harness.Common.run_world w;
  check_bool "finished" true !finished;
  check_int "txns" 50 (Metrics.Histogram.count hist)

let test_fig12_orderings () =
  let rows = Harness.Fig_apps.fig12 ~txns:100 ~keys:30 () in
  let avg name =
    (List.find (fun (r : Harness.Fig_apps.txn_row) -> r.Harness.Fig_apps.system = name) rows)
      .Harness.Fig_apps.avg_ns
  in
  check_bool "catmint beats the custom RDMA stack" true (avg "Catmint" < avg "RDMA (custom)");
  check_bool "catnap beats linux tcp" true (avg "Catnap" < avg "Linux (TCP)");
  check_bool "kernel bypass beats catnap" true (avg "Catnip (TCP)" < avg "Catnap")

let test_fig10_orderings () =
  let rows = Harness.Fig_apps.fig10 ~count:200 () in
  let avg name =
    (List.find (fun (r : Harness.Fig_apps.relay_row) -> r.Harness.Fig_apps.system = name) rows)
      .Harness.Fig_apps.avg_ns
  in
  check_bool "io_uring modestly better than posix" true (avg "io_uring" < avg "Linux");
  check_bool "catnip much better than both" true
    (avg "Catnip" < avg "io_uring" && avg "Linux" - avg "Catnip" > 5_000)

let test_fig11_orderings () =
  let rows = Harness.Fig_apps.fig11 ~ops_per_client:100 ~clients:8 () in
  let kops system op persist =
    (List.find
       (fun (r : Harness.Fig_apps.kv_row) ->
         r.Harness.Fig_apps.system = system
         && r.Harness.Fig_apps.op = op
         && r.Harness.Fig_apps.persist = persist)
       rows)
      .Harness.Fig_apps.kops
  in
  check_bool "catnip beats linux (GET, memory)" true
    (kops "Catnip" `Get false > kops "Linux" `Get false);
  check_bool "catnap polling hurts under concurrency" true
    (kops "Catnap" `Get false < kops "Linux" `Get false);
  check_bool "persistence collapses linux SETs" true
    (kops "Linux" `Set true < 0.5 *. kops "Linux" `Set false);
  (* The paper's claim is relative to unmodified Redis without
     persistence: Catnip x Cattree SETs stay within reach of it. *)
  check_bool "catnip+cattree SETs near linux in-memory rate" true
    (kops "Catnip" `Set true > 0.5 *. kops "Linux" `Set false)

let test_netpipe_monotone () =
  let rows = Harness.Fig_throughput.fig8 ~sizes:[ 64; 4096; 65536 ] () in
  let series system =
    List.filter
      (fun (r : Harness.Fig_throughput.netpipe_row) -> r.Harness.Fig_throughput.system = system)
      rows
    |> List.map (fun (r : Harness.Fig_throughput.netpipe_row) -> r.Harness.Fig_throughput.gbps)
  in
  List.iter
    (fun system ->
      match series system with
      | [ a; b; c ] ->
          check_bool (system ^ " bandwidth grows with size") true (a < b && b < c)
      | [ a; b ] -> check_bool (system ^ " grows") true (a < b)
      | _ -> Alcotest.fail "unexpected series")
    [ "Raw DPDK"; "Raw RDMA"; "Catmint"; "Catnip (TCP)" ]

let test_sensitivity_orderings_hold () =
  Harness.Common.default_count := 100;
  let ok, summary = Harness.Fig_latency.fig5_orderings_hold () in
  check_bool ("baseline orderings: " ^ summary) true ok;
  (* The within-hardware orderings must survive doubling the priciest
     kernel knob (the robustness bench sweeps the rest). *)
  let base = Net.Cost.bare_metal in
  let cost = { base with Net.Cost.kernel_wakeup_ns = base.Net.Cost.kernel_wakeup_ns * 2 } in
  let ok, summary = Harness.Fig_latency.fig5_orderings_hold ~cost () in
  check_bool ("perturbed orderings: " ^ summary) true ok

let suite =
  [
    Alcotest.test_case "raw device echoes" `Quick test_raw_echoes;
    Alcotest.test_case "kb library orderings" `Quick test_kb_lib_orderings;
    Alcotest.test_case "open loop tracks offered load" `Quick test_open_loop_tracks_offered;
    Alcotest.test_case "linux udp echo" `Quick test_linux_echo;
    Alcotest.test_case "linux tcp echo" `Quick test_linux_tcp_echo;
    Alcotest.test_case "fig5 orderings" `Slow test_fig5_orderings;
    Alcotest.test_case "fig6 windows gap" `Slow test_fig6_windows_gap;
    Alcotest.test_case "fig7: demikernel disk < linux memory" `Slow
      test_fig7_persistence_cheaper_than_linux_memory;
    Alcotest.test_case "custom rdma txnstore completes" `Quick test_txn_rdma_completes;
    Alcotest.test_case "fig12 orderings" `Slow test_fig12_orderings;
    Alcotest.test_case "fig10 orderings" `Slow test_fig10_orderings;
    Alcotest.test_case "fig11 orderings" `Slow test_fig11_orderings;
    Alcotest.test_case "fig8 bandwidth monotone" `Slow test_netpipe_monotone;
    Alcotest.test_case "fig5 orderings survive cost perturbation" `Slow
      test_sensitivity_orderings_hold;
  ]
