(* Deeper coverage: Catmint's credit flow control, TCP corner cases,
   scheduler details, engine wait_many, and a model-based heap test. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

(* --- engine: wait_many --- *)

let test_wait_many_any_signal () =
  let sim = Engine.Sim.create () in
  let cv1 = Engine.Condvar.create sim in
  let cv2 = Engine.Condvar.create sim in
  let outcome = ref None in
  Engine.Fiber.spawn sim (fun () ->
      outcome := Some (Engine.Condvar.wait_many sim [ cv1; cv2 ] ~timeout:None));
  Engine.Fiber.spawn sim (fun () ->
      Engine.Fiber.sleep sim 100;
      Engine.Condvar.broadcast cv2);
  Engine.Sim.run sim;
  check_bool "either signal wakes" true (!outcome = Some `Signaled)

let test_wait_many_timeout () =
  let sim = Engine.Sim.create () in
  let cv = Engine.Condvar.create sim in
  let woke_at = ref 0 in
  Engine.Fiber.spawn sim (fun () ->
      ignore (Engine.Condvar.wait_many sim [ cv ] ~timeout:(Some 777));
      woke_at := Engine.Sim.now sim);
  Engine.Sim.run sim;
  check_int "timeout at the deadline" 777 !woke_at

let test_wait_many_empty_list_timeout () =
  let sim = Engine.Sim.create () in
  let r = ref None in
  Engine.Fiber.spawn sim (fun () ->
      r := Some (Engine.Condvar.wait_many sim [] ~timeout:(Some 10)));
  Engine.Sim.run sim;
  check_bool "empty list times out" true (!r = Some `Timeout)

(* --- scheduler: stop and counters --- *)

let test_sched_stop () =
  let sim = Engine.Sim.create () in
  let host =
    Demikernel.Host.create sim ~name:"t" ~cost:bare ~heap_mode:Memory.Heap.Pool_backed
  in
  let sched = Demikernel.Dsched.create host in
  let ran = ref 0 in
  let rec fp () =
    incr ran;
    if !ran > 100 then Demikernel.Dsched.stop sched;
    Demikernel.Dsched.yield sched;
    fp ()
  in
  ignore (Demikernel.Dsched.spawn sched Demikernel.Dsched.Fast_path fp);
  Engine.Fiber.spawn sim (fun () -> Demikernel.Dsched.run sched);
  Engine.Sim.run sim;
  check_bool "stopped promptly" true (!ran > 100 && !ran < 105);
  check_bool "switches counted" true (Demikernel.Dsched.context_switches sched >= 100)

let test_sched_fastpath_round_robin () =
  let sim = Engine.Sim.create () in
  let host =
    Demikernel.Host.create sim ~name:"t" ~cost:bare ~heap_mode:Memory.Heap.Pool_backed
  in
  let sched = Demikernel.Dsched.create host in
  let order = ref [] in
  let fp tag () =
    for _ = 1 to 3 do
      order := tag :: !order;
      Demikernel.Dsched.yield sched
    done
  in
  ignore (Demikernel.Dsched.spawn sched Demikernel.Dsched.Fast_path (fp "x"));
  ignore (Demikernel.Dsched.spawn sched Demikernel.Dsched.Fast_path (fp "y"));
  Engine.Fiber.spawn sim (fun () -> Demikernel.Dsched.run sched);
  Engine.Sim.run sim;
  Alcotest.(check (list string)) "FIFO rotation" [ "x"; "y"; "x"; "y"; "x"; "y" ]
    (List.rev !order)

(* --- heap: model-based property --- *)

let heap_model =
  (* Random interleavings of alloc / app-free / os-incref / os-decref
     checked against a naive reference model of reference counts. *)
  QCheck.Test.make ~name:"heap matches a reference refcount model" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 120) (int_bound 3))
    (fun ops ->
      let heap = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
      (* model: (buffer, app_live, os_refs) *)
      let live = ref [] in
      let ok = ref true in
      let check () =
        List.iter
          (fun (b, app, os) ->
            if Memory.Heap.app_live b <> app then ok := false;
            if Memory.Heap.os_refs b <> os then ok := false;
            if Memory.Heap.is_slot_live b <> (app || os > 0) then ok := false)
          !live
      in
      List.iteri
        (fun i op ->
          (match (op, !live) with
          | 0, _ -> live := (Memory.Heap.alloc heap ((i mod 7) + 1), true, 0) :: !live
          | 1, (b, true, os) :: rest ->
              Memory.Heap.free b;
              live := if os = 0 then rest else (b, false, os) :: rest
          | 2, (b, app, os) :: rest when app || os > 0 ->
              Memory.Heap.os_incref b;
              live := (b, app, os + 1) :: rest
          | 3, (b, app, os) :: rest when os > 0 ->
              Memory.Heap.os_decref b;
              live := if (not app) && os = 1 then rest else (b, app, os - 1) :: rest
          | _, _ -> ());
          check ())
        ops;
      (* Drain everything; the heap must end balanced. *)
      List.iter
        (fun (b, app, os) ->
          if app then Memory.Heap.free b;
          for _ = 1 to os do
            Memory.Heap.os_decref b
          done)
        !live;
      !ok && Memory.Heap.live_objects heap = 0)

(* --- TCP corner cases --- *)

module Pair = struct
  (* A tiny two-stack world (subset of test_tcp's harness). *)
  type t = {
    mutable clock : int;
    mutable seq : int;
    mutable in_flight : (int * int * [ `A | `B ] * string) list;
    mutable a : Tcp.Stack.t;
    mutable b : Tcp.Stack.t;
    heap_a : Memory.Heap.t;
    heap_b : Memory.Heap.t;
  }

  let make ?(config = Tcp.Stack.default_config) () =
    let heap_a = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
    let heap_b = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
    let rec t =
      lazy
        (let clock () = (Lazy.force t).clock in
         let send dest frame =
           let p = Lazy.force t in
           p.seq <- p.seq + 1;
           p.in_flight <- (p.clock + 1_000, p.seq, dest, frame) :: p.in_flight
         in
         let iface i dest =
           Tcp.Iface.create ~mac:(Net.Addr.Mac.of_index i) ~ip:(Net.Addr.Ip.of_index i) ~clock
             ~tx_frame:(fun f -> send dest f) ()
         in
         {
           clock = 0;
           seq = 0;
           in_flight = [];
           a =
             Tcp.Stack.create ~config ~iface:(iface 1 `B) ~heap:heap_a
               ~prng:(Engine.Prng.create 5L) ~events:(fun _ -> ()) ();
           b =
             Tcp.Stack.create ~config ~iface:(iface 2 `A) ~heap:heap_b
               ~prng:(Engine.Prng.create 6L) ~events:(fun _ -> ()) ();
           heap_a;
           heap_b;
         })
    in
    Lazy.force t

  let run t =
    let rec step guard =
      if guard = 0 then failwith "no quiescence";
      let ft = List.fold_left (fun acc (at, _, _, _) -> min acc at) max_int t.in_flight in
      let tt =
        List.fold_left
          (fun acc d -> match d with Some d -> min acc d | None -> acc)
          max_int
          [ Tcp.Stack.next_timer t.a; Tcp.Stack.next_timer t.b ]
      in
      let at = min ft tt in
      if at < max_int then begin
        t.clock <- max t.clock at;
        let due, rest = List.partition (fun (x, _, _, _) -> x <= t.clock) t.in_flight in
        t.in_flight <- rest;
        List.iter
          (fun (_, _, d, f) ->
            match d with `A -> Tcp.Stack.input t.a f | `B -> Tcp.Stack.input t.b f)
          (List.sort (fun (a1, s1, _, _) (a2, s2, _, _) -> compare (a1, s1) (a2, s2)) due);
        Tcp.Stack.on_timer t.a;
        Tcp.Stack.on_timer t.b;
        step (guard - 1)
      end
    in
    step 100_000
end

let connect p =
  let listener = Tcp.Stack.tcp_listen p.Pair.b ~port:9 in
  let ca = Tcp.Stack.tcp_connect p.Pair.a ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 9) in
  Pair.run p;
  match Tcp.Stack.tcp_accept listener with
  | Some cb -> (ca, cb)
  | None -> Alcotest.fail "no accept"

let test_mss_negotiation () =
  (* Peer advertises a smaller MSS; our segments must respect it. *)
  let config_small = { Tcp.Stack.default_config with Tcp.Stack.mss = 500 } in
  let heap_a = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
  let heap_b = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
  let clockr = ref 0 in
  let in_flight = ref [] in
  let seqr = ref 0 in
  let max_seg = ref 0 in
  let send dest frame =
    (* Track the largest TCP payload crossing the wire. *)
    (let b = Bytes.unsafe_of_string frame in
     match Net.Eth.read b 0 with
     | exception Net.Wire.Malformed _ -> ()
     | eth, off ->
         if eth.Net.Eth.ethertype = Net.Eth.ethertype_ipv4 then
           match Net.Ipv4.read b off with
           | exception Net.Wire.Malformed _ -> ()
           | ip, toff ->
               if ip.Net.Ipv4.protocol = Net.Ipv4.protocol_tcp then
                 match
                   Net.Tcp_wire.read b toff
                     ~seg_len:(ip.Net.Ipv4.total_length - Net.Ipv4.size)
                     ~src_ip:ip.Net.Ipv4.src ~dst_ip:ip.Net.Ipv4.dst
                 with
                 | exception Net.Wire.Malformed _ -> ()
                 | _, poff ->
                     max_seg :=
                       max !max_seg (ip.Net.Ipv4.total_length - Net.Ipv4.size - (poff - toff)));
    incr seqr;
    in_flight := (!clockr + 1_000, !seqr, dest, frame) :: !in_flight
  in
  let iface i dest =
    Tcp.Iface.create ~mac:(Net.Addr.Mac.of_index i) ~ip:(Net.Addr.Ip.of_index i)
      ~clock:(fun () -> !clockr)
      ~tx_frame:(fun f -> send dest f)
      ()
  in
  let sa =
    Tcp.Stack.create ~iface:(iface 1 `B) ~heap:heap_a ~prng:(Engine.Prng.create 5L)
      ~events:(fun _ -> ()) ()
  in
  let sb =
    Tcp.Stack.create ~config:config_small ~iface:(iface 2 `A) ~heap:heap_b
      ~prng:(Engine.Prng.create 6L) ~events:(fun _ -> ()) ()
  in
  ignore (Tcp.Stack.tcp_listen sb ~port:9);
  let ca = Tcp.Stack.tcp_connect sa ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 9) in
  let rec pump guard =
    if guard > 0 then begin
      let ft = List.fold_left (fun acc (at, _, _, _) -> min acc at) max_int !in_flight in
      let tt =
        List.fold_left
          (fun acc d -> match d with Some d -> min acc d | None -> acc)
          max_int
          [ Tcp.Stack.next_timer sa; Tcp.Stack.next_timer sb ]
      in
      let at = min ft tt in
      if at < max_int then begin
        clockr := max !clockr at;
        let due, rest = List.partition (fun (x, _, _, _) -> x <= !clockr) !in_flight in
        in_flight := rest;
        List.iter
          (fun (_, _, d, f) ->
            match d with `A -> Tcp.Stack.input sa f | `B -> Tcp.Stack.input sb f)
          (List.sort compare due);
        Tcp.Stack.on_timer sa;
        Tcp.Stack.on_timer sb;
        (if Tcp.Stack.conn_state ca = Tcp.Stack.Established_st && !max_seg = 0 then
           let buf = Memory.Heap.alloc_of_string heap_a (String.make 3000 'm') in
           Tcp.Stack.tcp_send ca [ buf ]);
        pump (guard - 1)
      end
    end
  in
  pump 10_000;
  check_bool (Printf.sprintf "segments capped at peer MSS (max seen %d)" !max_seg) true
    (!max_seg > 0 && !max_seg <= 500)

let test_simultaneous_close () =
  let p = Pair.make () in
  let ca, cb = connect p in
  (* Both sides close at the same instant. *)
  Tcp.Stack.tcp_close ca;
  Tcp.Stack.tcp_close cb;
  Pair.run p;
  check_bool "a closed" true (Tcp.Stack.conn_state ca = Tcp.Stack.Closed_st);
  check_bool "b closed" true (Tcp.Stack.conn_state cb = Tcp.Stack.Closed_st);
  check_int "no leaked conns a" 0 (Tcp.Stack.live_connections p.Pair.a);
  check_int "no leaked conns b" 0 (Tcp.Stack.live_connections p.Pair.b)

let test_many_connections () =
  let p = Pair.make () in
  let listener = Tcp.Stack.tcp_listen p.Pair.b ~port:9 in
  let conns =
    List.init 20 (fun _ ->
        Tcp.Stack.tcp_connect p.Pair.a ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 9))
  in
  Pair.run p;
  check_int "all accepted" 20 (Tcp.Stack.accept_pending listener);
  List.iter
    (fun c -> check_bool "established" true (Tcp.Stack.conn_state c = Tcp.Stack.Established_st))
    conns;
  (* Distinct ephemeral ports. *)
  let ports = List.map (fun c -> (Tcp.Stack.conn_local c).Net.Addr.port) conns in
  check_int "distinct ports" 20 (List.length (List.sort_uniq compare ports))

let test_window_scale_large_windows () =
  (* A >64 kB advertised window requires the scale option end to end. *)
  let config =
    { Tcp.Stack.default_config with Tcp.Stack.rwnd_capacity = 1 lsl 20; window_scale = 7 }
  in
  let p = Pair.make ~config () in
  let ca, cb = connect p in
  let data = String.init 300_000 (fun i -> Char.chr (i land 0xff)) in
  let buf = Memory.Heap.alloc_of_string p.Pair.heap_a data in
  Tcp.Stack.tcp_send ca [ buf ];
  let got = Buffer.create 300_000 in
  let rec pump guard =
    if guard = 0 then Alcotest.fail "stalled";
    Pair.run p;
    let rec drain () =
      match Tcp.Stack.tcp_recv cb with
      | `Data b ->
          Buffer.add_string got (Memory.Heap.to_string b);
          Memory.Heap.free b;
          drain ()
      | `Eof | `Nothing -> ()
    in
    drain ();
    if Buffer.length got < 300_000 then pump (guard - 1)
  in
  pump 100;
  check_bool "300kB through scaled windows intact" true
    (String.equal (Buffer.contents got) data);
  Memory.Heap.free buf

(* --- Catmint flow control --- *)

let catmint_world ~window =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let mk index =
    let host =
      Demikernel.Host.create sim
        ~name:(Printf.sprintf "cm-%d" index)
        ~cost:bare ~heap_mode:Memory.Heap.Register_on_demand
    in
    let rt = Demikernel.Runtime.create host in
    let rnic =
      Net.Rdma_sim.create fabric ~mac:(Net.Addr.Mac.of_index index)
        ~ip:(Net.Addr.Ip.of_index index) ()
    in
    let api = Demikernel.Catmint.api rt ~rnic ~window () in
    (rt, api, rnic)
  in
  (sim, mk 1, mk 2)

let test_catmint_flow_control_blocks_sender () =
  (* Window of 4 messages; the receiver pops slowly. The sender's pushes
     beyond the credit window must queue (not RNR-drop) and complete as
     one-sided credit grants arrive. *)
  let sim, (rt_s, api_s, rnic_s), (rt_c, api_c, rnic_c) = catmint_world ~window:4 in
  let received = ref [] in
  Demikernel.Runtime.spawn_app rt_s
    (fun api ->
      let lqd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Tcp in
      api.Demikernel.Pdpix.bind lqd (Net.Addr.endpoint 0 7);
      api.Demikernel.Pdpix.listen lqd ~backlog:1;
      match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.accept lqd) with
      | Demikernel.Pdpix.Accepted qd ->
          for _ = 1 to 20 do
            (* Slow consumer: credits are the only thing pacing the
               sender. *)
            api.Demikernel.Pdpix.spin 20_000;
            match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.pop qd) with
            | Demikernel.Pdpix.Popped sga ->
                received := Demikernel.Pdpix.sga_to_string sga :: !received;
                List.iter api.Demikernel.Pdpix.free sga
            | _ -> failwith "pop failed"
          done
      | _ -> failwith "accept failed")
    api_s;
  let pushed = ref 0 in
  Demikernel.Runtime.spawn_app rt_c
    (fun api ->
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Tcp in
      (match
         api.Demikernel.Pdpix.wait
           (api.Demikernel.Pdpix.connect qd (Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 7))
       with
      | Demikernel.Pdpix.Connected -> ()
      | _ -> failwith "connect failed");
      (* Fire all 20 pushes at once — far beyond the 4-message window. *)
      let tokens =
        List.init 20 (fun i ->
            let buf = api.Demikernel.Pdpix.alloc_str (Printf.sprintf "m%02d" i) in
            let qt = api.Demikernel.Pdpix.push qd [ buf ] in
            api.Demikernel.Pdpix.free buf;
            qt)
      in
      List.iter
        (fun qt ->
          match api.Demikernel.Pdpix.wait qt with
          | Demikernel.Pdpix.Pushed -> incr pushed
          | _ -> failwith "push failed")
        tokens)
    api_c;
  Demikernel.Runtime.start rt_s;
  Demikernel.Runtime.start rt_c;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_int "all pushes completed" 20 !pushed;
  check_int "all messages delivered" 20 (List.length !received);
  Alcotest.(check (list string)) "in order"
    (List.init 20 (Printf.sprintf "m%02d"))
    (List.rev !received);
  (* Flow control means the device never hit receiver-not-ready. *)
  check_int "no rnr drops at server" 0 (Net.Rdma_sim.rnr_drops rnic_s);
  check_int "no rnr drops at client" 0 (Net.Rdma_sim.rnr_drops rnic_c)

let test_catmint_rejects_oversized_message () =
  let sim, (rt_s, api_s, _), (rt_c, api_c, _) = catmint_world ~window:8 in
  Demikernel.Runtime.spawn_app rt_s
    (fun api ->
      let lqd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Tcp in
      api.Demikernel.Pdpix.bind lqd (Net.Addr.endpoint 0 7);
      api.Demikernel.Pdpix.listen lqd ~backlog:1;
      ignore (api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.accept lqd)))
    api_s;
  let raised = ref false in
  Demikernel.Runtime.spawn_app rt_c
    (fun api ->
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Tcp in
      (match
         api.Demikernel.Pdpix.wait
           (api.Demikernel.Pdpix.connect qd (Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 7))
       with
      | Demikernel.Pdpix.Connected -> ()
      | _ -> failwith "connect failed");
      let big = api.Demikernel.Pdpix.alloc ((1 lsl 20) - 64) in
      let big2 = api.Demikernel.Pdpix.alloc ((1 lsl 20) - 64) in
      (* Two ~1MB buffers in one sga exceed the device message limit. *)
      (try ignore (api.Demikernel.Pdpix.push qd [ big; big2 ])
       with Invalid_argument _ -> raised := true);
      api.Demikernel.Pdpix.free big;
      api.Demikernel.Pdpix.free big2)
    api_c;
  Demikernel.Runtime.start rt_s;
  Demikernel.Runtime.start rt_c;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "oversized message rejected" true !raised

(* --- listen backlog --- *)

let test_backlog_cap () =
  (* 12 simultaneous connects against a backlog of 5, with no accept()
     draining: exactly 5 handshakes complete; the excess SYNs are
     dropped until the clients give up. *)
  let p = Pair.make () in
  let listener = Tcp.Stack.tcp_listen ~backlog:5 p.Pair.b ~port:9 in
  let conns =
    List.init 12 (fun _ ->
        Tcp.Stack.tcp_connect p.Pair.a ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 9))
  in
  Pair.run p;
  check_int "backlog bounds unaccepted connections" 5
    (Tcp.Stack.accept_pending listener);
  let established, dead =
    List.partition (fun c -> Tcp.Stack.conn_state c = Tcp.Stack.Established_st) conns
  in
  check_int "five clients won" 5 (List.length established);
  check_int "the rest gave up" 7 (List.length dead)

(* --- corruption: checksums turn bit rot into loss, TCP repairs it --- *)

let test_corruption_survived () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare ~corrupt:0.05 () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  let finished = ref false in
  Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
  Demikernel.Boot.run_app client
    (Apps.Echo.client
       ~dst:(Demikernel.Boot.endpoint server 7)
       ~msg_size:256 ~count:100
       ~on_done:(fun () -> finished := true));
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 60) sim;
  check_bool "100 echos intact despite 5% frame corruption" true !finished

(* --- wait_all --- *)

let test_wait_all () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let node = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let done_ = ref false in
  Demikernel.Boot.run_app node (fun api ->
      let q = api.Demikernel.Pdpix.queue () in
      let bufs = List.init 3 (fun i -> api.Demikernel.Pdpix.alloc_str (string_of_int i)) in
      let pushes = List.map (fun b -> api.Demikernel.Pdpix.push q [ b ]) bufs in
      let results = api.Demikernel.Pdpix.wait_all (Array.of_list pushes) in
      assert (Array.for_all (fun c -> c = Demikernel.Pdpix.Pushed) results);
      (* And the three pops complete with the pushed payloads. *)
      let pops = Array.init 3 (fun _ -> api.Demikernel.Pdpix.pop q) in
      let popped = api.Demikernel.Pdpix.wait_all pops in
      let texts =
        Array.to_list popped
        |> List.map (function
             | Demikernel.Pdpix.Popped sga -> Demikernel.Pdpix.sga_to_string sga
             | _ -> failwith "bad completion")
      in
      assert (texts = [ "0"; "1"; "2" ]);
      done_ := true);
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_bool "wait_all completed" true !done_

(* --- relay: multiple sessions --- *)

let test_relay_multiple_sessions () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let relay = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app relay (Apps.Relay.server ~port:3478);
  Demikernel.Boot.start relay;
  let finished = ref 0 in
  List.iteri
    (fun i session ->
      let gen = Demikernel.Boot.make sim fabric ~index:(2 + i) Demikernel.Boot.Catnip_os in
      Demikernel.Boot.run_app gen
        (Apps.Relay.generator
           ~dst:(Demikernel.Boot.endpoint relay 3478)
           ~src_port:4000 ~session ~msg_size:100 ~count:20
           ~on_done:(fun () -> incr finished));
      Demikernel.Boot.start gen)
    [ 11; 22; 33 ];
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_int "all three sessions relayed independently" 3 !finished

(* --- incast and congestion fairness --- *)

let test_fabric_incast_queueing () =
  (* Two senders blast one receiver simultaneously: the receiver's link
     serializes, so arrivals are spaced by at least one serialization
     time. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let mk i rx = Net.Fabric.attach fabric ~mac:(Net.Addr.Mac.of_index i) ~rx in
  let arrivals = ref [] in
  let _sink = mk 3 (fun _ -> arrivals := Engine.Sim.now sim :: !arrivals) in
  let frame src =
    let b = Bytes.create (Net.Eth.size + 1400) in
    let _ =
      Net.Eth.write b 0
        { Net.Eth.dst = Net.Addr.Mac.of_index 3; src; ethertype = 0x88B5 }
    in
    Bytes.unsafe_to_string b
  in
  let p1 = mk 1 (fun _ -> ()) in
  let p2 = mk 2 (fun _ -> ()) in
  Net.Fabric.send fabric p1 (frame (Net.Addr.Mac.of_index 1));
  Net.Fabric.send fabric p2 (frame (Net.Addr.Mac.of_index 2));
  Engine.Sim.run sim;
  match List.sort compare !arrivals with
  | [ a; b ] ->
      let ser = Net.Cost.serialization_ns bare (Net.Eth.size + 1400) in
      check_bool
        (Printf.sprintf "second arrival %d >= first %d + serialization %d" b a ser)
        true
        (b - a >= ser)
  | _ -> Alcotest.fail "expected two arrivals"

let test_two_flow_fairness () =
  (* Two Catnip clients stream bulk data into one server through its
     shared downlink; congestion control must let both finish in the
     same ballpark. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
  Demikernel.Boot.start server;
  let finish = Array.make 2 0 in
  List.iteri
    (fun i index ->
      let client = Demikernel.Boot.make sim fabric ~index Demikernel.Boot.Catnip_os in
      Demikernel.Boot.run_app client
        (Apps.Echo.stream_client
           ~dst:(Demikernel.Boot.endpoint server 7)
           ~msg_size:16_384 ~count:32 ~window:4
           ~on_done:(fun () -> finish.(i) <- Engine.Sim.now sim));
      Demikernel.Boot.start client)
    [ 2; 3 ];
  Engine.Sim.run ~until:(Engine.Clock.s 30) sim;
  check_bool "both flows finished" true (finish.(0) > 0 && finish.(1) > 0);
  let slow = max finish.(0) finish.(1) and fast = min finish.(0) finish.(1) in
  check_bool
    (Printf.sprintf "rough fairness (finish %d vs %d)" fast slow)
    true
    (slow < 3 * fast)

(* --- IP fragmentation --- *)

let test_udp_fragmentation_end_to_end () =
  (* A 20kB datagram crosses a 1500-byte MTU: ~14 fragments out, one
     datagram in. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server (Apps.Echo.udp_server ~port:7);
  let got = ref 0 in
  Demikernel.Boot.run_app client
    (Apps.Echo.udp_client
       ~dst:(Demikernel.Boot.endpoint server 7)
       ~src_port:5001 ~msg_size:20_000 ~count:5
       ~record:(fun _ -> incr got));
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_int "five jumbo datagrams echoed" 5 !got;
  (* The wire actually carried MTU-sized frames. *)
  let frames = (Net.Fabric.stats fabric).Net.Fabric.frames_delivered in
  check_bool (Printf.sprintf "fragmented on the wire (%d frames)" frames) true (frames > 100)

let udp_fragmentation_sizes =
  QCheck.Test.make ~name:"udp datagrams of any size reassemble" ~count:30
    QCheck.(int_range 1 60_000)
    (fun size ->
      let sim = Engine.Sim.create () in
      let fabric = Net.Fabric.create sim ~cost:bare () in
      let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
      let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
      Demikernel.Boot.run_app server (Apps.Echo.udp_server ~port:7);
      let ok = ref false in
      Demikernel.Boot.run_app client (fun api ->
          let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
          api.Demikernel.Pdpix.bind qd (Net.Addr.endpoint 0 5001);
          let payload = String.init size (fun i -> Char.chr ((i * 13) land 0xff)) in
          let buf = api.Demikernel.Pdpix.alloc_str payload in
          (match api.Demikernel.Pdpix.wait
                   (api.Demikernel.Pdpix.pushto qd (Demikernel.Boot.endpoint server 7) [ buf ])
           with
          | Demikernel.Pdpix.Pushed -> api.Demikernel.Pdpix.free buf
          | _ -> failwith "push failed");
          match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.pop qd) with
          | Demikernel.Pdpix.Popped_from (_, sga) ->
              ok := String.equal (Demikernel.Pdpix.sga_to_string sga) payload;
              List.iter api.Demikernel.Pdpix.free sga
          | _ -> ());
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
      !ok)

let test_fragment_loss_drops_whole_datagram () =
  (* Losing one fragment must lose the datagram (no partial delivery),
     and must not wedge the reassembler. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare ~loss:0.2 () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server (Apps.Echo.udp_server ~port:7);
  let got = ref 0 in
  Demikernel.Boot.run_app client (fun api ->
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
      api.Demikernel.Pdpix.bind qd (Net.Addr.endpoint 0 5001);
      for _ = 1 to 20 do
        let buf = api.Demikernel.Pdpix.alloc_str (String.make 8_000 'f') in
        (match api.Demikernel.Pdpix.wait
                 (api.Demikernel.Pdpix.pushto qd (Demikernel.Boot.endpoint server 7) [ buf ])
         with
        | Demikernel.Pdpix.Pushed -> api.Demikernel.Pdpix.free buf
        | _ -> failwith "push failed");
        (* Wait briefly for an echo; most datagrams die to loss. *)
        match api.Demikernel.Pdpix.wait_any_t
                [| api.Demikernel.Pdpix.pop qd |] ~timeout_ns:2_000_000
        with
        | Some (_, Demikernel.Pdpix.Popped_from (_, sga)) ->
            if Demikernel.Pdpix.sga_length sga = 8_000 then incr got;
            List.iter api.Demikernel.Pdpix.free sga
        | Some _ | None -> ()
      done);
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  (* 6 fragments each way, 20% loss: most must die; any that arrive are
     complete. *)
  check_bool (Printf.sprintf "no partial datagrams (%d complete)" !got) true
    (!got >= 0 && !got < 20)

(* --- robustness: hostile input never crashes the stack --- *)

let stack_input_fuzz =
  QCheck.Test.make ~name:"Stack.input never raises on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun junk ->
      let heap = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
      let iface =
        Tcp.Iface.create ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1)
          ~clock:(fun () -> 0)
          ~tx_frame:(fun _ -> ())
          ()
      in
      let stack =
        Tcp.Stack.create ~iface ~heap ~prng:(Engine.Prng.create 1L) ~events:(fun _ -> ()) ()
      in
      ignore (Tcp.Stack.tcp_listen stack ~port:7);
      ignore (Tcp.Stack.udp_bind stack ~port:7);
      match Tcp.Stack.input stack junk with () -> true | exception _ -> false)

let stack_input_mutation_fuzz =
  (* Mutate bytes of an otherwise-valid TCP SYN frame: parse guards and
     checksums must contain the damage. *)
  let valid_syn =
    let h =
      {
        Net.Tcp_wire.src_port = 5000;
        dst_port = 7;
        seq = 42;
        ack = 0;
        syn = true;
        ack_flag = false;
        fin = false;
        rst = false;
        psh = false;
        window = 0xffff;
        options =
          {
            Net.Tcp_wire.no_options with
            Net.Tcp_wire.mss = Some 1460;
            window_scale = Some 7;
            timestamp = Some (1, 0);
            sack_permitted = true;
          };
      }
    in
    let hsize = Net.Tcp_wire.header_size h in
    let b = Bytes.create (Net.Eth.size + Net.Ipv4.size + hsize) in
    let off =
      Net.Eth.write b 0
        {
          Net.Eth.dst = Net.Addr.Mac.of_index 1;
          src = Net.Addr.Mac.of_index 2;
          ethertype = Net.Eth.ethertype_ipv4;
        }
    in
    let off =
      Net.Ipv4.write b off
        (Net.Ipv4.whole ~total_length:(Net.Ipv4.size + hsize) ~identification:1 ~protocol:Net.Ipv4.protocol_tcp ~src:(Net.Addr.Ip.of_index 2) ~dst:(Net.Addr.Ip.of_index 1))
    in
    ignore
      (Net.Tcp_wire.write b off h ~payload_len:0 ~src_ip:(Net.Addr.Ip.of_index 2)
         ~dst_ip:(Net.Addr.Ip.of_index 1));
    Bytes.unsafe_to_string b
  in
  QCheck.Test.make ~name:"Stack.input survives mutated valid frames" ~count:500
    QCheck.(pair (int_bound 200) (int_bound 255))
    (fun (pos, value) ->
      let heap = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
      let b = Bytes.of_string valid_syn in
      Bytes.set b (pos mod Bytes.length b) (Char.chr value);
      let iface =
        Tcp.Iface.create ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1)
          ~clock:(fun () -> 0)
          ~tx_frame:(fun _ -> ())
          ()
      in
      let receiver =
        Tcp.Stack.create ~iface ~heap ~prng:(Engine.Prng.create 3L) ~events:(fun _ -> ()) ()
      in
      ignore (Tcp.Stack.tcp_listen receiver ~port:7);
      match Tcp.Stack.input receiver (Bytes.unsafe_to_string b) with
      | () -> true
      | exception _ -> false)

(* --- close fails outstanding waiters --- *)

let test_close_fails_pending_pops () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
  let outcome = ref None in
  let handoff = ref None in
  Demikernel.Boot.run_app client ~name:"waiter" (fun api ->
      let q = api.Demikernel.Pdpix.queue () in
      handoff := Some q;
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Tcp in
      (match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.connect qd (Demikernel.Boot.endpoint server 7)) with
      | Demikernel.Pdpix.Connected ->
          let msg = api.Demikernel.Pdpix.alloc_str (string_of_int qd) in
          ignore (api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.push q [ msg ]))
      | _ -> failwith "connect failed");
      match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.pop qd) with
      | Demikernel.Pdpix.Failed _ -> outcome := Some `Failed
      | _ -> outcome := Some `Other);
  Demikernel.Boot.run_app client ~name:"closer" (fun api ->
      let q = match !handoff with Some q -> q | None -> failwith "no handoff" in
      match api.Demikernel.Pdpix.wait (api.Demikernel.Pdpix.pop q) with
      | Demikernel.Pdpix.Popped sga ->
          let qd = int_of_string (Demikernel.Pdpix.sga_to_string sga) in
          List.iter api.Demikernel.Pdpix.free sga;
          (* Give the waiter time to block in pop, then close under it. *)
          api.Demikernel.Pdpix.spin 50_000;
          api.Demikernel.Pdpix.close qd
      | _ -> failwith "handoff failed");
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "blocked pop failed on close" true (!outcome = Some `Failed)

(* --- determinism across full experiments --- *)

let test_experiment_determinism () =
  let run () =
    let hist =
      Harness.Common.demi_echo_rtt ~count:100 ~proto:Harness.Common.Echo_tcp
        Demikernel.Boot.Catnip_os
    in
    (Metrics.Histogram.p50 hist, Metrics.Histogram.p99 hist,
     int_of_float (Metrics.Histogram.mean hist))
  in
  let a = run () in
  let b = run () in
  check_bool "bit-identical experiment reruns" true (a = b)

let suite =
  [
    Alcotest.test_case "wait_many: any signal wakes" `Quick test_wait_many_any_signal;
    Alcotest.test_case "wait_many: timeout" `Quick test_wait_many_timeout;
    Alcotest.test_case "wait_many: empty list" `Quick test_wait_many_empty_list_timeout;
    Alcotest.test_case "sched stop" `Quick test_sched_stop;
    Alcotest.test_case "sched fast-path FIFO rotation" `Quick test_sched_fastpath_round_robin;
    QCheck_alcotest.to_alcotest heap_model;
    Alcotest.test_case "mss negotiation honored" `Quick test_mss_negotiation;
    Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
    Alcotest.test_case "20 concurrent connections" `Quick test_many_connections;
    Alcotest.test_case "window scaling: 300kB windows" `Quick test_window_scale_large_windows;
    Alcotest.test_case "catmint credit flow control" `Quick test_catmint_flow_control_blocks_sender;
    Alcotest.test_case "catmint rejects oversized sga" `Quick test_catmint_rejects_oversized_message;
    Alcotest.test_case "listen backlog cap" `Quick test_backlog_cap;
    Alcotest.test_case "checksums defeat corruption" `Quick test_corruption_survived;
    Alcotest.test_case "wait_all" `Quick test_wait_all;
    Alcotest.test_case "relay: independent sessions" `Quick test_relay_multiple_sessions;
    Alcotest.test_case "udp fragmentation end-to-end" `Quick test_udp_fragmentation_end_to_end;
    QCheck_alcotest.to_alcotest udp_fragmentation_sizes;
    Alcotest.test_case "fragment loss drops whole datagram" `Quick
      test_fragment_loss_drops_whole_datagram;
    QCheck_alcotest.to_alcotest stack_input_fuzz;
    QCheck_alcotest.to_alcotest stack_input_mutation_fuzz;
    Alcotest.test_case "close fails pending pops" `Quick test_close_fails_pending_pops;
    Alcotest.test_case "fabric incast queueing" `Quick test_fabric_incast_queueing;
    Alcotest.test_case "two-flow congestion fairness" `Quick test_two_flow_fairness;
    Alcotest.test_case "experiment-level determinism" `Quick test_experiment_determinism;
  ]
