test/test_baselines.ml: Alcotest Baselines Float Harness List Metrics Net Printf
