test/test_units.ml: Alcotest Apps Baselines Bytes Demikernel Engine Format Memory Metrics Net Oskernel QCheck QCheck_alcotest
