test/test_more.ml: Alcotest Apps Array Buffer Bytes Char Demikernel Engine Gen Harness Lazy List Memory Metrics Net Printf QCheck QCheck_alcotest String Tcp
