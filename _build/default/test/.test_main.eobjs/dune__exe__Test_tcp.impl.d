test/test_tcp.ml: Alcotest Array Buffer Char Engine Fun Gen Int64 Lazy List Memory Net Printf QCheck QCheck_alcotest String Tcp
