test/test_oskernel.ml: Alcotest Baselines Engine List Memory Net Oskernel Printf String
