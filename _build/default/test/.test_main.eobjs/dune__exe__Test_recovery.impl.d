test/test_recovery.ml: Alcotest Apps Bytes Demikernel Engine List Net Printf String
