test/test_net.ml: Alcotest Bytes Engine Gen List Net QCheck QCheck_alcotest String
