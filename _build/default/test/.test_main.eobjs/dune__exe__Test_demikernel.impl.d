test/test_demikernel.ml: Alcotest Apps Demikernel Engine Lazy List Memory Metrics Net Oskernel Printf QCheck QCheck_alcotest
