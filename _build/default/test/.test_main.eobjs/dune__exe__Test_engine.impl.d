test/test_engine.ml: Alcotest Engine Format Fun List QCheck QCheck_alcotest String
