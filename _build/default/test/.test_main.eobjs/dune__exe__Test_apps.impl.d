test/test_apps.ml: Alcotest Apps Array Char Demikernel Engine Fun Gen List Metrics Net Printf QCheck QCheck_alcotest String
