test/test_metrics.ml: Alcotest Gen List Metrics QCheck QCheck_alcotest
