(* Tests for histograms and table rendering helpers. *)

let check_int = Alcotest.(check int)

let test_histogram_empty () =
  let h = Metrics.Histogram.create () in
  check_int "count" 0 (Metrics.Histogram.count h);
  check_int "p99" 0 (Metrics.Histogram.p99 h);
  Alcotest.(check (float 0.0)) "mean" 0. (Metrics.Histogram.mean h)

let test_histogram_single () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 1234;
  check_int "count" 1 (Metrics.Histogram.count h);
  check_int "min" 1234 (Metrics.Histogram.min h);
  check_int "max" 1234 (Metrics.Histogram.max h);
  check_int "p50 = only sample" 1234 (Metrics.Histogram.p50 h)

let test_histogram_exact_small () =
  (* Values below 32 are recorded exactly. *)
  let h = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.add h) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  check_int "p50" 5 (Metrics.Histogram.quantile h 0.5);
  check_int "p100" 10 (Metrics.Histogram.quantile h 1.0)

let test_histogram_precision =
  QCheck.Test.make ~name:"histogram quantile within 1/32 relative error" ~count:300
    QCheck.(int_range 1 1_000_000_000)
    (fun v ->
      let h = Metrics.Histogram.create () in
      Metrics.Histogram.add h v;
      let q = Metrics.Histogram.p50 h in
      let err = abs (q - v) in
      (* Bucket width at v is at most v/32 + 1. *)
      err <= (v / 32) + 1)

let test_histogram_mean_merge () =
  let a = Metrics.Histogram.create () in
  let b = Metrics.Histogram.create () in
  List.iter (Metrics.Histogram.add a) [ 100; 200 ];
  List.iter (Metrics.Histogram.add b) [ 300; 400 ];
  Metrics.Histogram.merge a b;
  check_int "merged count" 4 (Metrics.Histogram.count a);
  Alcotest.(check (float 0.01)) "merged mean" 250. (Metrics.Histogram.mean a);
  check_int "merged max" 400 (Metrics.Histogram.max a);
  check_int "merged min" 100 (Metrics.Histogram.min a)

let test_histogram_clear () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h 42;
  Metrics.Histogram.clear h;
  check_int "count after clear" 0 (Metrics.Histogram.count h);
  Metrics.Histogram.add h 7;
  check_int "usable after clear" 7 (Metrics.Histogram.p50 h)

let test_histogram_negative_clamped () =
  let h = Metrics.Histogram.create () in
  Metrics.Histogram.add h (-5);
  check_int "clamped to zero" 0 (Metrics.Histogram.min h)

let test_histogram_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 10_000_000))
    (fun samples ->
      let h = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.add h) samples;
      let q25 = Metrics.Histogram.quantile h 0.25 in
      let q50 = Metrics.Histogram.quantile h 0.5 in
      let q99 = Metrics.Histogram.quantile h 0.99 in
      q25 <= q50 && q50 <= q99)

let test_cells () =
  Alcotest.(check string) "ns" "640ns" (Metrics.Table.cell_ns 640);
  Alcotest.(check string) "us" "5.30us" (Metrics.Table.cell_ns 5_300);
  Alcotest.(check string) "int" "12" (Metrics.Table.cell_i 12);
  Alcotest.(check string) "float" "3.14" (Metrics.Table.cell_f 3.14159)

let suite =
  [
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram single sample" `Quick test_histogram_single;
    Alcotest.test_case "histogram exact small values" `Quick test_histogram_exact_small;
    QCheck_alcotest.to_alcotest test_histogram_precision;
    Alcotest.test_case "histogram mean/merge" `Quick test_histogram_mean_merge;
    Alcotest.test_case "histogram clear" `Quick test_histogram_clear;
    Alcotest.test_case "histogram clamps negatives" `Quick test_histogram_negative_clamped;
    QCheck_alcotest.to_alcotest test_histogram_quantile_monotone;
    Alcotest.test_case "table cell rendering" `Quick test_cells;
  ]
