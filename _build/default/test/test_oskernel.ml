(* Tests for the legacy kernel I/O path. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

let world () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  (sim, fabric)

let kernel sim fabric ~index ?with_disk ?mode () =
  Baselines.Linux_apps.make_kernel sim fabric ~index ?with_disk ?mode ()

let test_udp_roundtrip () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 () in
  let k2 = kernel sim fabric ~index:2 () in
  let got = ref None in
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.udp_socket k1 ~port:53 in
      match Oskernel.Kernel.recvfrom k1 fd ~block:true with
      | Some (from, payload) ->
          got := Some payload;
          Oskernel.Kernel.sendto k1 fd ~dst:from "reply"
      | None -> ());
  let reply = ref None in
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.udp_socket k2 ~port:54 in
      Oskernel.Kernel.sendto k2 fd ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 53) "ping";
      match Oskernel.Kernel.recvfrom k2 fd ~block:true with
      | Some (_, payload) -> reply := Some payload
      | None -> ());
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  Alcotest.(check (option string)) "server got" (Some "ping") !got;
  Alcotest.(check (option string)) "client got" (Some "reply") !reply

let test_tcp_roundtrip () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 () in
  let k2 = kernel sim fabric ~index:2 () in
  let got = ref "" in
  Engine.Fiber.spawn sim (fun () ->
      let lfd = Oskernel.Kernel.tcp_listen k1 ~port:80 in
      let fd = Oskernel.Kernel.accept k1 lfd in
      match Oskernel.Kernel.recv k1 fd ~block:true with
      | Some payload ->
          got := payload;
          Oskernel.Kernel.send k1 fd payload
      | None -> ());
  let echoed = ref "" in
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.connect k2 ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 80) in
      Oskernel.Kernel.send k2 fd "kernel tcp";
      match Oskernel.Kernel.recv k2 fd ~block:true with
      | Some payload -> echoed := payload
      | None -> ());
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  Alcotest.(check string) "server" "kernel tcp" !got;
  Alcotest.(check string) "client" "kernel tcp" !echoed

let test_kernel_copies_and_syscalls () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 () in
  let k2 = kernel sim fabric ~index:2 () in
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.udp_socket k1 ~port:53 in
      match Oskernel.Kernel.recvfrom k1 fd ~block:true with
      | Some (from, payload) -> Oskernel.Kernel.sendto k1 fd ~dst:from payload
      | None -> ());
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.udp_socket k2 ~port:54 in
      Oskernel.Kernel.sendto k2 fd
        ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 53)
        (String.make 1000 'x');
      ignore (Oskernel.Kernel.recvfrom k2 fd ~block:true));
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  (* Server copies the kB in (kernel->user) and out (user->kernel). *)
  let copied = (Memory.Heap.stats (Oskernel.Kernel.heap k1)).Memory.Heap.bytes_copied in
  check_bool "server copied at least 2kB" true (copied >= 2000);
  check_bool "syscalls counted" true (Oskernel.Kernel.syscalls k1 >= 3)

let test_uring_cheaper () =
  (* Same workload under posix and io_uring modes: uring finishes in
     less virtual time (cheaper crossings). *)
  let run mode =
    let sim, fabric = world () in
    let k1 = kernel sim fabric ~index:1 ~mode () in
    let k2 = kernel sim fabric ~index:2 ~mode () in
    let finish = ref 0 in
    Engine.Fiber.spawn sim (fun () ->
        let fd = Oskernel.Kernel.udp_socket k1 ~port:53 in
        let rec loop () =
          match Oskernel.Kernel.recvfrom k1 fd ~block:true with
          | Some (from, payload) ->
              Oskernel.Kernel.sendto k1 fd ~dst:from payload;
              loop ()
          | None -> loop ()
        in
        loop ());
    Engine.Fiber.spawn sim (fun () ->
        let fd = Oskernel.Kernel.udp_socket k2 ~port:54 in
        for _ = 1 to 20 do
          Oskernel.Kernel.sendto k2 fd ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 53) "m";
          ignore (Oskernel.Kernel.recvfrom k2 fd ~block:true)
        done;
        finish := Engine.Sim.now sim);
    Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
    !finish
  in
  let posix = run Oskernel.Kernel.Posix in
  let uring = run Oskernel.Kernel.Uring in
  check_bool
    (Printf.sprintf "uring (%d) faster than posix (%d)" uring posix)
    true
    (uring < posix && uring > 0)

let test_append_sync_durable () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 ~with_disk:true () in
  let finished = ref 0 in
  Engine.Fiber.spawn sim (fun () ->
      Oskernel.Kernel.append_sync k1 "durable record";
      finished := Engine.Sim.now sim);
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  (* write+fsync through ext4 to Optane: tens of microseconds. *)
  check_bool "took at least the device write" true (!finished > bare.Net.Cost.ssd_write_ns);
  check_bool "took the file-system cost too" true (!finished > bare.Net.Cost.kernel_file_ns)

let test_append_without_disk_fails () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 () in
  let failed = ref false in
  Engine.Fiber.spawn sim (fun () ->
      match Oskernel.Kernel.append_sync k1 "x" with
      | () -> ()
      | exception Failure _ -> failed := true);
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_bool "raises without a disk" true !failed

let test_wait_readable_multiplexes () =
  let sim, fabric = world () in
  let k1 = kernel sim fabric ~index:1 () in
  let k2 = kernel sim fabric ~index:2 () in
  let served = ref 0 in
  Engine.Fiber.spawn sim (fun () ->
      let a = Oskernel.Kernel.udp_socket k1 ~port:10 in
      let b = Oskernel.Kernel.udp_socket k1 ~port:11 in
      let rec loop () =
        if !served < 2 then begin
          Oskernel.Kernel.wait_readable k1 [ a; b ];
          List.iter
            (fun fd ->
              match Oskernel.Kernel.recvfrom k1 fd ~block:false with
              | Some _ -> incr served
              | None -> ())
            [ a; b ];
          loop ()
        end
      in
      loop ());
  Engine.Fiber.spawn sim (fun () ->
      let fd = Oskernel.Kernel.udp_socket k2 ~port:20 in
      Oskernel.Kernel.sendto k2 fd ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 10) "a";
      Engine.Fiber.sleep sim 50_000;
      Oskernel.Kernel.sendto k2 fd ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 11) "b");
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_int "both sockets served through one wait loop" 2 !served

let suite =
  [
    Alcotest.test_case "kernel udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "kernel tcp roundtrip" `Quick test_tcp_roundtrip;
    Alcotest.test_case "kernel copies + syscall accounting" `Quick test_kernel_copies_and_syscalls;
    Alcotest.test_case "io_uring mode is cheaper" `Quick test_uring_cheaper;
    Alcotest.test_case "append_sync is durable and slow" `Quick test_append_sync_durable;
    Alcotest.test_case "append_sync without disk fails" `Quick test_append_without_disk_fails;
    Alcotest.test_case "wait_readable multiplexes" `Quick test_wait_readable_multiplexes;
  ]
