(* Tests for the µs-scale applications: framing, UDP relay, the KV
   store, workload generators, TxnStore. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

(* --- framing --- *)

let test_framing_roundtrip () =
  let a = Apps.Framing.create () in
  Apps.Framing.feed a (Apps.Framing.encode "hello");
  Apps.Framing.feed a (Apps.Framing.encode "world");
  Alcotest.(check (option string)) "first" (Some "hello") (Apps.Framing.next a);
  Alcotest.(check (option string)) "second" (Some "world") (Apps.Framing.next a);
  Alcotest.(check (option string)) "empty" None (Apps.Framing.next a)

let test_framing_fragmented () =
  let a = Apps.Framing.create () in
  let encoded = Apps.Framing.encode "fragmented message" in
  String.iter (fun ch -> Apps.Framing.feed a (String.make 1 ch)) encoded;
  Alcotest.(check (option string)) "reassembled" (Some "fragmented message")
    (Apps.Framing.next a)

let framing_random =
  QCheck.Test.make ~name:"framing reassembles arbitrary splits" ~count:200
    QCheck.(pair (list (string_of_size (Gen.int_range 0 50))) (int_range 1 17))
    (fun (messages, chunk) ->
      let a = Apps.Framing.create () in
      let wire = String.concat "" (List.map Apps.Framing.encode messages) in
      let n = String.length wire in
      let rec feed off =
        if off < n then begin
          let len = min chunk (n - off) in
          Apps.Framing.feed a (String.sub wire off len);
          feed (off + len)
        end
      in
      feed 0;
      let rec drain acc =
        match Apps.Framing.next a with Some m -> drain (m :: acc) | None -> List.rev acc
      in
      drain [] = messages)

(* --- workload generators --- *)

let test_zipf_skew () =
  let prng = Engine.Prng.create 7L in
  let next = Apps.Workload.zipfian prng ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let k = next () in
    counts.(k) <- counts.(k) + 1
  done;
  (* Hot key dominates; the tail is hit but rarely. *)
  check_bool "key 0 is hot" true (counts.(0) > 2_000);
  let tail_hits = Array.fold_left ( + ) 0 (Array.sub counts 500 500) in
  check_bool "tail is cold" true (tail_hits < 4_000)

let zipf_in_range =
  QCheck.Test.make ~name:"zipfian stays in range" ~count:50
    QCheck.(pair int64 (int_range 2 10_000))
    (fun (seed, n) ->
      let prng = Engine.Prng.create seed in
      let next = Apps.Workload.zipfian prng ~n ~theta:0.99 in
      List.for_all
        (fun _ ->
          let k = next () in
          k >= 0 && k < n)
        (List.init 100 Fun.id))

let test_poisson_positive () =
  let prng = Engine.Prng.create 3L in
  let next = Apps.Workload.poisson_interarrival prng ~rate_per_sec:100_000. in
  let total = List.fold_left (fun acc _ -> acc + next ()) 0 (List.init 1000 Fun.id) in
  (* Mean gap 10us; 1000 draws ~ 10ms +- a lot. *)
  check_bool "mean in the right decade" true (total > 2_000_000 && total < 50_000_000)

(* --- UDP relay --- *)

let test_relay () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let relay = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let gen = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  let rtts = Metrics.Histogram.create () in
  let finished = ref false in
  Demikernel.Boot.run_app relay (Apps.Relay.server ~port:3478);
  Demikernel.Boot.run_app gen
    (Apps.Relay.generator
       ~dst:(Demikernel.Boot.endpoint relay 3478)
       ~src_port:4000 ~session:99 ~msg_size:200 ~count:40
       ~record:(Metrics.Histogram.add rtts)
       ~on_done:(fun () -> finished := true));
  Demikernel.Boot.start relay;
  Demikernel.Boot.start gen;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_bool "finished" true !finished;
  check_int "all packets relayed" 40 (Metrics.Histogram.count rtts)

(* --- dkv --- *)

let dkv_world ?(flavor = Demikernel.Boot.Catnip_os) ?(persist = false) () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let server = Demikernel.Boot.make sim fabric ~index:1 ~with_disk:persist flavor in
  let client = Demikernel.Boot.make sim fabric ~index:2 flavor in
  Demikernel.Boot.run_app server (Apps.Dkv.server ~port:6379 ~persist);
  (sim, server, client)

let test_dkv_get_set_del () =
  let sim, server, client = dkv_world () in
  let results = ref [] in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server 6379) in
      results := [ `Set (Apps.Dkv.set c "alpha" "one") ];
      results := `Get (Apps.Dkv.get c "alpha") :: !results;
      results := `Set (Apps.Dkv.set c "alpha" "two") :: !results;
      results := `Get (Apps.Dkv.get c "alpha") :: !results;
      results := `Del (Apps.Dkv.del c "alpha") :: !results;
      results := `Get (Apps.Dkv.get c "alpha") :: !results;
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  match List.rev !results with
  | [ `Set s1; `Get g1; `Set s2; `Get g2; `Del d1; `Get g3 ] ->
      check_bool "set ok" true (s1 = Apps.Dkv.Ok);
      check_bool "get one" true (g1 = (Apps.Dkv.Ok, "one"));
      check_bool "overwrite ok" true (s2 = Apps.Dkv.Ok);
      check_bool "get two" true (g2 = (Apps.Dkv.Ok, "two"));
      check_bool "del ok" true (d1 = Apps.Dkv.Ok);
      check_bool "get miss" true (fst g3 = Apps.Dkv.Not_found)
  | _ -> Alcotest.fail "wrong result shape"

let test_dkv_large_values () =
  (* Values above the MSS force fragmentation through the framing
     fallback path. *)
  let sim, server, client = dkv_world () in
  let ok = ref false in
  let big = String.init 8000 (fun i -> Char.chr (i land 0xff)) in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server 6379) in
      assert (Apps.Dkv.set c "big" big = Apps.Dkv.Ok);
      (match Apps.Dkv.get c "big" with
      | Apps.Dkv.Ok, v when String.equal v big -> ok := true
      | _ -> ());
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_bool "large value roundtrip" true !ok

let test_dkv_persistence () =
  let sim, server, client = dkv_world ~persist:true () in
  let finished = ref false in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server 6379) in
      for i = 1 to 10 do
        assert (Apps.Dkv.set c (Printf.sprintf "k%d" i) "value" = Apps.Dkv.Ok)
      done;
      Apps.Dkv.client_close c;
      finished := true);
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 5) sim;
  check_bool "finished" true !finished;
  match server.Demikernel.Boot.ssd with
  | Some ssd -> check_bool "AOF hit the device" true (Net.Ssd_sim.bytes_written ssd > 0)
  | None -> Alcotest.fail "no ssd"

let test_dkv_bench_runs_everywhere () =
  List.iter
    (fun flavor ->
      let sim, server, client = dkv_world ~flavor () in
      let finished = ref false in
      Demikernel.Boot.run_app client
        (Apps.Dkv.bench_client
           ~dst:(Demikernel.Boot.endpoint server 6379)
           ~keys:50 ~value_size:64 ~ops:100 ~kind:`Get ~seed:1
           ~on_done:(fun () -> finished := true));
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Engine.Sim.run ~until:(Engine.Clock.s 30) sim;
      check_bool "bench finished" true !finished)
    [ Demikernel.Boot.Catnip_os; Demikernel.Boot.Catmint_os; Demikernel.Boot.Catnap_os ]

(* --- txnstore --- *)

let txn_world flavor =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let replicas =
    List.map
      (fun i ->
        let node = Demikernel.Boot.make sim fabric ~index:i flavor in
        Demikernel.Boot.run_app node (Apps.Txnstore.server ~port:7447);
        node)
      [ 1; 2; 3 ]
  in
  let client = Demikernel.Boot.make sim fabric ~index:4 flavor in
  (sim, replicas, client)

let test_txnstore_rmw () =
  let sim, replicas, client = txn_world Demikernel.Boot.Catnip_os in
  let endpoints = List.map (fun r -> Demikernel.Boot.endpoint r 7447) replicas in
  let observed = ref None in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Txnstore.connect api ~replicas:endpoints ~seed:5 in
      Apps.Txnstore.put c "counter" ~version:1 "0";
      (* Three RMW increments must be serial through versioning. *)
      for _ = 1 to 3 do
        Apps.Txnstore.rmw c "counter" (fun v -> string_of_int (int_of_string v + 1))
      done;
      observed := Apps.Txnstore.get c "counter";
      Apps.Txnstore.close c);
  List.iter Demikernel.Boot.start replicas;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 10) sim;
  match !observed with
  | Some (version, value) ->
      check_int "version advanced" 4 version;
      Alcotest.(check string) "value incremented three times" "3" value
  | None -> Alcotest.fail "no final value"

let test_txnstore_replicates () =
  (* After a put, a fresh client reading via round-robin hits different
     replicas; all must return the value. *)
  let sim, replicas, client = txn_world Demikernel.Boot.Catnip_os in
  let endpoints = List.map (fun r -> Demikernel.Boot.endpoint r 7447) replicas in
  let reads = ref [] in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Txnstore.connect api ~replicas:endpoints ~seed:6 in
      Apps.Txnstore.put c "replicated" ~version:1 "everywhere";
      for _ = 1 to 3 do
        reads := Apps.Txnstore.get c "replicated" :: !reads
      done;
      Apps.Txnstore.close c);
  List.iter Demikernel.Boot.start replicas;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 10) sim;
  check_int "three reads" 3 (List.length !reads);
  List.iter
    (fun r -> check_bool "every replica has it" true (r = Some (1, "everywhere")))
    !reads

let test_txnstore_ycsb_f () =
  let sim, replicas, client = txn_world Demikernel.Boot.Catnip_os in
  let endpoints = List.map (fun r -> Demikernel.Boot.endpoint r 7447) replicas in
  let lat = Metrics.Histogram.create () in
  let finished = ref false in
  Demikernel.Boot.run_app client
    (Apps.Txnstore.ycsb_f ~dst_replicas:endpoints ~keys:20 ~value_size:128 ~txns:50
       ~theta:0.99 ~seed:9
       ~record:(Metrics.Histogram.add lat)
       ~on_done:(fun () -> finished := true));
  List.iter Demikernel.Boot.start replicas;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 30) sim;
  check_bool "finished" true !finished;
  check_int "txns measured" 50 (Metrics.Histogram.count lat);
  (* An RMW is at least two network round trips. *)
  check_bool "txn latency exceeds 2 RTT" true (Metrics.Histogram.p50 lat > 8_000)

let suite =
  [
    Alcotest.test_case "framing roundtrip" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing byte-by-byte" `Quick test_framing_fragmented;
    QCheck_alcotest.to_alcotest framing_random;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    QCheck_alcotest.to_alcotest zipf_in_range;
    Alcotest.test_case "poisson interarrivals" `Quick test_poisson_positive;
    Alcotest.test_case "udp relay" `Quick test_relay;
    Alcotest.test_case "dkv get/set/del" `Quick test_dkv_get_set_del;
    Alcotest.test_case "dkv large values" `Quick test_dkv_large_values;
    Alcotest.test_case "dkv persistence (AOF)" `Quick test_dkv_persistence;
    Alcotest.test_case "dkv bench on all libOSes" `Quick test_dkv_bench_runs_everywhere;
    Alcotest.test_case "txnstore rmw serializes" `Quick test_txnstore_rmw;
    Alcotest.test_case "txnstore replicates to all" `Quick test_txnstore_replicates;
    Alcotest.test_case "txnstore ycsb-f" `Quick test_txnstore_ycsb_f;
  ]
