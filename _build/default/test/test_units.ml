(* Focused unit tests for remaining public-surface edges: cost
   profiles, addressing, boot wiring, API error paths. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bare = Net.Cost.bare_metal

(* --- cost profiles --- *)

let test_profiles_ordering () =
  let w = Net.Cost.windows and a = Net.Cost.azure_vm in
  check_bool "WSL crossings dwarf native" true (w.Net.Cost.syscall_ns > 3 * bare.Net.Cost.syscall_ns);
  check_bool "WSL wakeups dwarf native" true
    (w.Net.Cost.kernel_wakeup_ns > 2 * bare.Net.Cost.kernel_wakeup_ns);
  check_int "no vnet on bare metal" 0 bare.Net.Cost.vnet_ns;
  check_bool "azure pays vnet" true (a.Net.Cost.vnet_ns > 0);
  check_bool "infiniband switch is faster" true (w.Net.Cost.switch_ns < bare.Net.Cost.switch_ns)

let serialization_monotone =
  QCheck.Test.make ~name:"serialization cost monotone in size" ~count:200
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let sa = Net.Cost.serialization_ns bare a and sb = Net.Cost.serialization_ns bare b in
      if a <= b then sa <= sb else sa >= sb)

let copy_cost_positive =
  QCheck.Test.make ~name:"copy cost includes the fixed call overhead" ~count:100
    QCheck.(int_bound 100_000)
    (fun n -> Net.Cost.copy_cost_ns bare n >= bare.Net.Cost.copy_base_ns)

(* --- addresses --- *)

let test_mac_rendering () =
  Alcotest.(check string) "mac format" "02:00:00:00:00:03"
    (Format.asprintf "%a" Net.Addr.Mac.pp (Net.Addr.Mac.of_index 2));
  check_bool "broadcast" true (Net.Addr.Mac.is_broadcast Net.Addr.Mac.broadcast);
  check_bool "unicast" false (Net.Addr.Mac.is_broadcast (Net.Addr.Mac.of_index 1))

let test_ip_rendering () =
  Alcotest.(check string) "ip format" "10.0.0.2"
    (Format.asprintf "%a" Net.Addr.Ip.pp (Net.Addr.Ip.of_index 1));
  Alcotest.(check string) "endpoint format" "10.0.0.2:80"
    (Format.asprintf "%a" Net.Addr.pp_endpoint (Net.Addr.endpoint (Net.Addr.Ip.of_index 1) 80))

let mac_indexes_distinct =
  QCheck.Test.make ~name:"host indexes map to distinct addresses" ~count:100
    QCheck.(pair (int_bound 60_000) (int_bound 60_000))
    (fun (i, j) ->
      i = j
      || (Net.Addr.Mac.of_index i <> Net.Addr.Mac.of_index j
         && Net.Addr.Ip.of_index i <> Net.Addr.Ip.of_index j))

(* --- boot wiring --- *)

let test_boot_heap_modes () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let mode flavor i =
    let node = Demikernel.Boot.make sim fabric ~index:i flavor in
    Memory.Heap.mode node.Demikernel.Boot.host.Demikernel.Host.heap
  in
  check_bool "catnap heap cannot DMA" true (mode Demikernel.Boot.Catnap_os 1 = Memory.Heap.Not_dma);
  check_bool "catnip heap is pool-backed" true
    (mode Demikernel.Boot.Catnip_os 2 = Memory.Heap.Pool_backed);
  check_bool "catmint heap registers on demand" true
    (mode Demikernel.Boot.Catmint_os 3 = Memory.Heap.Register_on_demand)

let test_boot_devices_match_flavor () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let catnip = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let catmint = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catmint_os in
  let catnap = Demikernel.Boot.make sim fabric ~index:3 Demikernel.Boot.Catnap_os in
  check_bool "catnip has a dpdk nic" true (catnip.Demikernel.Boot.nic <> None);
  check_bool "catnip has no rnic" true (catnip.Demikernel.Boot.rnic = None);
  check_bool "catmint has an rnic" true (catmint.Demikernel.Boot.rnic <> None);
  check_bool "catnap has a kernel" true (catnap.Demikernel.Boot.kernel <> None)

(* --- API error paths --- *)

let run_app_world f =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let node = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app node f;
  Demikernel.Boot.start node;
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim

let test_wait_on_redeemed_token () =
  let saw = ref false in
  run_app_world (fun api ->
      let q = api.Demikernel.Pdpix.queue () in
      let buf = api.Demikernel.Pdpix.alloc_str "x" in
      let qt = api.Demikernel.Pdpix.push q [ buf ] in
      ignore (api.Demikernel.Pdpix.wait qt);
      match api.Demikernel.Pdpix.wait qt with
      | _ -> ()
      | exception Invalid_argument _ -> saw := true);
  check_bool "double redeem rejected" true !saw

let test_udp_oversize_datagram_rejected () =
  let saw = ref false in
  run_app_world (fun api ->
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
      api.Demikernel.Pdpix.bind qd (Net.Addr.endpoint 0 9);
      let buf = api.Demikernel.Pdpix.alloc 66_000 in
      (try
         ignore
           (api.Demikernel.Pdpix.pushto qd (Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 9)
              [ buf ])
       with Invalid_argument _ -> saw := true);
      api.Demikernel.Pdpix.free buf);
  check_bool "oversize datagram rejected" true !saw

let test_bind_port_collision () =
  let saw = ref false in
  run_app_world (fun api ->
      let a = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
      api.Demikernel.Pdpix.bind a (Net.Addr.endpoint 0 9);
      let b = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
      try api.Demikernel.Pdpix.bind b (Net.Addr.endpoint 0 9)
      with Invalid_argument _ -> saw := true);
  check_bool "port collision rejected" true !saw

let test_dkv_error_response () =
  (* The server keeps serving after ordinary traffic (the hostile-bytes
     case is covered by the protocol parse tests and the fuzzers). *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app server (Apps.Dkv.server ~port:6379);
  let results = ref [] in
  Demikernel.Boot.run_app client (fun api ->
      let c = Apps.Dkv.client_connect api (Demikernel.Boot.endpoint server 6379) in
      let set_status = Apps.Dkv.set c "k" "v" in
      let get_status = fst (Apps.Dkv.get c "k") in
      results := [ set_status; get_status ];
      Apps.Dkv.client_close c);
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "normal traffic fine" true (!results = [ Apps.Dkv.Ok; Apps.Dkv.Ok ])

let test_relay_unknown_session () =
  (* Relaying to an unregistered session is silently dropped; the relay
     stays up. *)
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let relay = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let gen = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  Demikernel.Boot.run_app relay (Apps.Relay.server ~port:3478);
  let alive = ref false in
  Demikernel.Boot.run_app gen (fun api ->
      let qd = api.Demikernel.Pdpix.socket Demikernel.Pdpix.Udp in
      api.Demikernel.Pdpix.bind qd (Net.Addr.endpoint 0 4000);
      (* op=1 (relay) for a session nobody registered. *)
      let b = Bytes.make 10 'x' in
      Net.Wire.set_u32 b 0 777;
      Net.Wire.set_u8 b 4 1;
      let buf = api.Demikernel.Pdpix.alloc_str (Bytes.unsafe_to_string b) in
      ignore
        (api.Demikernel.Pdpix.wait
           (api.Demikernel.Pdpix.pushto qd (Demikernel.Boot.endpoint relay 3478) [ buf ]));
      api.Demikernel.Pdpix.free buf;
      (* Now register and relay for real; the server must still work. *)
      alive := true);
  Demikernel.Boot.start relay;
  Demikernel.Boot.start gen;
  Engine.Sim.run ~until:(Engine.Clock.s 1) sim;
  check_bool "relay survived garbage" true !alive

let test_kernel_connect_refused () =
  let sim = Engine.Sim.create () in
  let fabric = Net.Fabric.create sim ~cost:bare () in
  let k1 = Baselines.Linux_apps.make_kernel sim fabric ~index:1 () in
  let _k2 = Baselines.Linux_apps.make_kernel sim fabric ~index:2 () in
  let refused = ref false in
  Engine.Fiber.spawn sim (fun () ->
      match Oskernel.Kernel.connect k1 ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 99) with
      | _ -> ()
      | exception Failure _ -> refused := true);
  Engine.Sim.run ~until:(Engine.Clock.s 2) sim;
  check_bool "kernel connect refused" true !refused

let test_table_rendering_smoke () =
  let t = Metrics.Table.create ~title:"smoke" ~columns:[ "a"; "b" ] in
  Metrics.Table.add_row t [ "x"; Metrics.Table.cell_ns 1234 ];
  Metrics.Table.print t (* must not raise *)

let suite =
  [
    Alcotest.test_case "cost profiles ordering" `Quick test_profiles_ordering;
    QCheck_alcotest.to_alcotest serialization_monotone;
    QCheck_alcotest.to_alcotest copy_cost_positive;
    Alcotest.test_case "mac rendering" `Quick test_mac_rendering;
    Alcotest.test_case "ip rendering" `Quick test_ip_rendering;
    QCheck_alcotest.to_alcotest mac_indexes_distinct;
    Alcotest.test_case "boot heap modes per flavor" `Quick test_boot_heap_modes;
    Alcotest.test_case "boot devices per flavor" `Quick test_boot_devices_match_flavor;
    Alcotest.test_case "double token redeem rejected" `Quick test_wait_on_redeemed_token;
    Alcotest.test_case "oversize udp datagram rejected" `Quick test_udp_oversize_datagram_rejected;
    Alcotest.test_case "bind port collision" `Quick test_bind_port_collision;
    Alcotest.test_case "dkv stays up for hostile clients" `Quick test_dkv_error_response;
    Alcotest.test_case "relay ignores unknown sessions" `Quick test_relay_unknown_session;
    Alcotest.test_case "kernel connect refused" `Quick test_kernel_connect_refused;
    Alcotest.test_case "table rendering smoke" `Quick test_table_rendering_smoke;
  ]
