(* `bench -- compare`: the benchmark-artifact guard (PR 10).

   Every BENCH_pr<N>.json committed at the repo root is a claim about
   the tree at that PR; nothing re-checked them after commit. This pass
   loads them all, validates each against the schema its family
   promises (wallclock records from PRs 3/6, scale records from PR 8
   on), re-verifies the internal exactness invariants (attribution
   bands sum, completed = ops, zero gc-poll violations, zero pool
   errors), and then compares consecutive artifacts of the same family
   and mode at matching sweep points: a latency quantile or GC volume
   that grew by more than [regress_factor] between two committed
   records is flagged as a regression and fails the run.

   No JSON library ships in the tree, so a ~60-line recursive-descent
   parser lives here — the artifacts are machine-written by our own
   printf and small, so this is parsing our own output, not the
   internet's. *)

(* ---------- a minimal JSON reader ---------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then s.[!i] else '\255' in
  let adv () = incr i in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      adv ()
    done
  in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected '%c' at byte %d" c !i));
    adv ()
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then raise (Bad "unterminated string");
      match s.[!i] with
      | '"' -> adv ()
      | '\\' ->
          adv ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              (* artifacts never emit \u escapes; keep them opaque *)
              Buffer.add_string b "\\u"
          | c -> Buffer.add_char b c);
          adv ();
          go ()
      | c ->
          Buffer.add_char b c;
          adv ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !i in
    while
      !i < n
      && match s.[!i] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      adv ()
    done;
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number at byte %d" start))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        adv ();
        skip_ws ();
        if peek () = '}' then begin
          adv ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_go () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then begin
              adv ();
              fields_go ()
            end
            else expect '}'
          in
          fields_go ();
          Obj (List.rev !fields)
        end
    | '[' ->
        adv ();
        skip_ws ();
        if peek () = ']' then begin
          adv ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_go () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            if peek () = ',' then begin
              adv ();
              items_go ()
            end
            else expect ']'
          in
          items_go ();
          Arr (List.rev !items)
        end
    | '"' -> Str (string_lit ())
    | 't' ->
        i := !i + 4;
        Bool true
    | 'f' ->
        i := !i + 5;
        Bool false
    | 'n' ->
        i := !i + 4;
        Null
    | c -> if c = '-' || (c >= '0' && c <= '9') then Num (number ()) else raise (Bad (Printf.sprintf "unexpected '%c' at byte %d" c !i))
  in
  let v = value () in
  skip_ws ();
  if !i <> n then raise (Bad (Printf.sprintf "trailing bytes at %d" !i));
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let num_of = function Num f -> Some f | _ -> None
let str_of = function Str s -> Some s | _ -> None
let arr_of = function Arr l -> Some l | _ -> None
let fnum j k = Option.bind (member k j) num_of
let fint j k = Option.map int_of_float (fnum j k)
let fstr j k = Option.bind (member k j) str_of

(* ---------- artifact discovery ---------- *)

type artifact = { path : string; pr : int; doc : json }

let pr_of_name name =
  (* BENCH_pr<N>.json, nothing else *)
  let pre = "BENCH_pr" and suf = ".json" in
  let lp = String.length pre and ls = String.length suf and ln = String.length name in
  if ln > lp + ls && String.sub name 0 lp = pre && String.sub name (ln - ls) ls = suf then
    int_of_string_opt (String.sub name lp (ln - lp - ls))
  else None

let load_artifacts dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match pr_of_name name with
         | None -> None
         | Some pr ->
             let path = Filename.concat dir name in
             let ic = open_in path in
             let s = really_input_string ic (in_channel_length ic) in
             close_in ic;
             Some (path, pr, s))
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  |> List.map (fun (path, pr, s) ->
         match parse s with
         | doc -> { path; pr; doc }
         | exception Bad e ->
             Printf.eprintf "compare: %s is not valid JSON: %s\n%!" path e;
             exit 1)

(* ---------- per-artifact schema + invariant checks ---------- *)

let failures = ref 0

let flag path fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "  FAIL %s: %s\n%!" path msg)
    fmt

let require path doc keys =
  List.iter
    (fun k -> if member k doc = None then flag path "missing key \"%s\"" k)
    keys

let scale_point_keys =
  [
    "conns"; "client_stacks"; "ops"; "completed"; "wall_s"; "gc_minor_words";
    "gc_major_words"; "gc_alloc_mb"; "p50_ns"; "p99_ns"; "p999_ns"; "reconnects";
    "frames"; "polls"; "steady_polls"; "gc_poll_violations"; "conns_peak";
    "tcb_capacity"; "pool_errors";
  ]

(* Keys that arrived with later PRs: Demiflight's quantile/attribution
   extensions in PR 9, Demifleet's per-hop attribution in PR 10. *)
let scale_point_keys_pr9 = [ "p90_ns"; "lat_min_ns"; "lat_max_ns"; "attribution"; "slo"; "flight" ]
let band_keys = [ "band"; "cut_ns"; "ops"; "queue_ns"; "wire_ns"; "rest_ns"; "total_ns" ]
let band_keys_pr10 = [ "to_srv_ns"; "from_srv_ns" ]

let check_band path a band =
  require path band band_keys;
  if a.pr >= 10 then require path band band_keys_pr10;
  (match (fint band "queue_ns", fint band "wire_ns", fint band "rest_ns", fint band "total_ns") with
  | Some q, Some w, Some r, Some t ->
      if q + w + r <> t then
        flag path "band %s: queue+wire+rest = %d, total = %d"
          (Option.value ~default:"?" (fstr band "band"))
          (q + w + r) t
  | _ -> flag path "band with non-numeric attribution fields");
  match (fint band "queue_ns", fint band "to_srv_ns", fint band "from_srv_ns", fint band "total_ns") with
  | Some q, Some ts, Some fs, Some t ->
      if q + ts + fs <> t then
        flag path "band %s: queue+to_srv+from_srv = %d, total = %d"
          (Option.value ~default:"?" (fstr band "band"))
          (q + ts + fs) t
  | _ -> () (* pre-PR-10 artifacts carry no per-hop split *)

let check_scale_point path a point =
  require path point scale_point_keys;
  if a.pr >= 9 then require path point scale_point_keys_pr9;
  (match (fint point "ops", fint point "completed") with
  | Some ops, Some completed when ops <> completed ->
      flag path "conns=%d: completed %d of %d ops"
        (Option.value ~default:0 (fint point "conns"))
        completed ops
  | _ -> ());
  (match fint point "gc_poll_violations" with
  | Some 0 -> ()
  | Some v -> flag path "conns=%d: %d gc-poll violations (steady polls must allocate nothing)"
        (Option.value ~default:0 (fint point "conns")) v
  | None -> ());
  (match fint point "pool_errors" with
  | Some 0 | None -> ()
  | Some v ->
      flag path "conns=%d: %d pool sanitizer errors"
        (Option.value ~default:0 (fint point "conns"))
        v);
  match Option.bind (member "attribution" point) (fun att -> Option.bind (member "bands" att) arr_of) with
  | Some bands -> List.iter (check_band path a) bands
  | None -> if a.pr >= 9 then flag path "attribution.bands missing"

let check_scale a =
  require a.path a.doc
    [ "pr"; "mode"; "workload"; "sweep"; "attempted"; "largest_sustained"; "limiting_factor"; "churn_10k" ];
  match Option.bind (member "sweep" a.doc) arr_of with
  | Some points when points <> [] -> List.iter (check_scale_point a.path a) points
  | Some [] -> flag a.path "empty sweep"
  | _ -> flag a.path "sweep is not an array"

let check_wallclock a =
  require a.path a.doc [ "pr"; "mode"; "samples"; "baseline" ];
  match member "samples" a.doc with
  | Some samples ->
      List.iter
        (fun name ->
          match member name samples with
          | Some s -> require a.path s [ "wall_s"; "gc_alloc_mb"; "ops" ]
          | None -> flag a.path "samples.%s missing" name)
        [ "echo"; "churn" ]
  | None -> ()

let family a = if member "sweep" a.doc <> None then `Scale else `Wallclock

let check_artifact a =
  (match fint a.doc "pr" with
  | Some pr when pr = a.pr -> ()
  | Some pr -> flag a.path "file says pr %d, name says pr %d" pr a.pr
  | None -> flag a.path "missing \"pr\"");
  match family a with `Scale -> check_scale a | `Wallclock -> check_wallclock a

(* ---------- consecutive-artifact regression comparison ---------- *)

let regress_factor = 1.5

let compare_scale_points path_old path_new old_pt new_pt =
  let conns = Option.value ~default:0 (fint new_pt "conns") in
  List.iter
    (fun key ->
      match (fnum old_pt key, fnum new_pt key) with
      | Some o, Some n when o > 0. && n > o *. regress_factor ->
          flag path_new "conns=%d: %s regressed %.0f -> %.0f (>%.1fx vs %s)" conns key o n
            regress_factor path_old
      | _ -> ())
    [ "p50_ns"; "p99_ns"; "p999_ns"; "gc_alloc_mb" ]

let compare_pair older newer =
  match (family older, family newer) with
  | `Scale, `Scale -> (
      match (fstr older.doc "mode", fstr newer.doc "mode") with
      | Some mo, Some mn when mo <> mn ->
          Printf.printf "  skip %s vs %s: modes differ (%s vs %s)\n%!" older.path newer.path mo
            mn
      | _ -> (
          match
            ( Option.bind (member "sweep" older.doc) arr_of,
              Option.bind (member "sweep" newer.doc) arr_of )
          with
          | Some old_pts, Some new_pts ->
              List.iter
                (fun np ->
                  match fint np "conns" with
                  | None -> ()
                  | Some c -> (
                      match
                        List.find_opt (fun op -> fint op "conns" = Some c) old_pts
                      with
                      | Some op -> compare_scale_points older.path newer.path op np
                      | None -> ()))
                new_pts
          | _ -> ()))
  | `Wallclock, `Wallclock -> (
      match (fstr older.doc "mode", fstr newer.doc "mode") with
      | Some mo, Some mn when mo <> mn ->
          Printf.printf "  skip %s vs %s: modes differ (%s vs %s)\n%!" older.path newer.path mo
            mn
      | _ ->
          List.iter
            (fun sample ->
              match
                ( Option.bind (member "samples" older.doc) (member sample),
                  Option.bind (member "samples" newer.doc) (member sample) )
              with
              | Some os, Some ns -> (
                  match (fnum os "gc_alloc_mb", fnum ns "gc_alloc_mb") with
                  | Some o, Some n when o > 0. && n > o *. regress_factor ->
                      flag newer.path "%s gc_alloc_mb regressed %.1f -> %.1f vs %s" sample o n
                        older.path
                  | _ -> ())
              | _ -> ())
            [ "echo"; "churn" ])
  | _ -> () (* families changed between PRs; nothing comparable *)

let rec consecutive f = function
  | a :: (b :: _ as rest) ->
      f a b;
      consecutive f rest
  | _ -> ()

(* ---------- driver ---------- *)

let run ?(dir = ".") () =
  let artifacts = load_artifacts dir in
  if artifacts = [] then begin
    Printf.eprintf "compare: no BENCH_pr*.json found under %s\n%!" dir;
    exit 1
  end;
  Printf.printf "bench compare: %d artifact(s)\n%!" (List.length artifacts);
  List.iter
    (fun a ->
      let before = !failures in
      check_artifact a;
      if !failures = before then
        Printf.printf "  %s (pr %d, %s family): schema OK\n%!" a.path a.pr
          (match family a with `Scale -> "scale" | `Wallclock -> "wallclock"))
    artifacts;
  let by_family fam = List.filter (fun a -> family a = fam) artifacts in
  consecutive compare_pair (by_family `Scale);
  consecutive compare_pair (by_family `Wallclock);
  if !failures > 0 then begin
    Printf.printf "bench compare: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "bench compare: all artifacts consistent, no regressions flagged\n%!"
