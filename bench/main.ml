(* The benchmark entry point: regenerates every table and figure of the
   paper's evaluation (§7) from the simulator, and runs Bechamel
   microbenchmarks of the real datapath primitives.

   Usage:
     dune exec bench/main.exe            # everything, quick settings
     dune exec bench/main.exe -- full    # everything, paper-scale counts
     dune exec bench/main.exe -- fig5    # one experiment
   Experiments: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
                ablation micro *)

let say fmt = Format.printf fmt

(* ---------- Bechamel microbenchmarks (real nanoseconds) ---------- *)

let micro_tests () =
  let open Bechamel in
  (* Scheduler context switch (§5.4's 12-cycle claim): a full simulated
     world whose two coroutines yield to each other 1000 times; the
     reported time divided by 2000 approximates one dispatch. *)
  let sched_switch =
    Test.make ~name:"dsched: 2000 yield dispatches"
      (Staged.stage (fun () ->
           let sim = Engine.Sim.create () in
           let host =
             Demikernel.Host.create sim ~name:"bench" ~cost:Net.Cost.bare_metal
               ~heap_mode:Memory.Heap.Pool_backed
           in
           let sched = Demikernel.Dsched.create host in
           let yielder () =
             for _ = 1 to 1000 do
               Demikernel.Dsched.yield sched
             done
           in
           ignore (Demikernel.Dsched.spawn sched Demikernel.Dsched.App yielder);
           ignore (Demikernel.Dsched.spawn sched Demikernel.Dsched.App yielder);
           Engine.Fiber.spawn sim (fun () -> Demikernel.Dsched.run sched);
           Engine.Sim.run sim))
  in
  let waker =
    let w = Demikernel.Waker.create () in
    for _ = 1 to 1024 do
      ignore (Demikernel.Waker.alloc w)
    done;
    Test.make ~name:"waker: set+drain 64 of 1024"
      (Staged.stage (fun () ->
           for i = 0 to 63 do
             Demikernel.Waker.set w (i * 16)
           done;
           Demikernel.Waker.drain w (fun _ -> ())))
  in
  let checksum =
    let b = Bytes.make 1500 'x' in
    Test.make ~name:"checksum: 1500B internet checksum"
      (Staged.stage (fun () -> ignore (Net.Wire.checksum b 0 1500)))
  in
  let tcp_rx =
    (* Process one segment through header parse + demux + reassembly:
       the software path behind the paper's 53ns/packet figure. *)
    let heap = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
    let clock = ref 0 in
    let frames = ref [] in
    let iface_a =
      Tcp.Iface.create ~mac:(Net.Addr.Mac.of_index 1) ~ip:(Net.Addr.Ip.of_index 1)
        ~clock:(fun () -> !clock)
        ~tx_frame:(fun f -> frames := f :: !frames)
        ()
    in
    let stack =
      Tcp.Stack.create ~iface:iface_a ~heap ~prng:(Engine.Prng.create 3L)
        ~events:(fun _ -> ())
        ()
    in
    (* Build a valid-checksum data segment aimed at a listening port of
       an established-free stack: it is dropped after full parse +
       demux + RST generation — a representative rx path. *)
    let seg =
      let payload = String.make 64 'p' in
      let h =
        {
          Net.Tcp_wire.src_port = 9999;
          dst_port = 7;
          seq = 1000;
          ack = 0;
          syn = false;
          ack_flag = false;
          fin = false;
          rst = false;
          psh = true;
          window = 0xffff;
          options = Net.Tcp_wire.no_options;
        }
      in
      let hsize = Net.Tcp_wire.header_size h in
      let total = Net.Eth.size + Net.Ipv4.size + hsize + 64 in
      let b = Bytes.create total in
      let off =
        Net.Eth.write b 0
          {
            Net.Eth.dst = Net.Addr.Mac.of_index 1;
            src = Net.Addr.Mac.of_index 2;
            ethertype = Net.Eth.ethertype_ipv4;
          }
      in
      let off =
        Net.Ipv4.write b off
          (Net.Ipv4.whole ~total_length:(Net.Ipv4.size + hsize + 64) ~identification:1 ~protocol:Net.Ipv4.protocol_tcp ~src:(Net.Addr.Ip.of_index 2) ~dst:(Net.Addr.Ip.of_index 1))
      in
      Bytes.blit_string payload 0 b (off + hsize) 64;
      ignore
        (Net.Tcp_wire.write b off h ~payload_len:64 ~src_ip:(Net.Addr.Ip.of_index 2)
           ~dst_ip:(Net.Addr.Ip.of_index 1));
      Bytes.unsafe_to_string b
    in
    Test.make ~name:"catnip: tcp segment rx processing"
      (Staged.stage (fun () ->
           clock := !clock + 100;
           frames := [];
           Tcp.Stack.input stack seg))
  in
  let heap_ops =
    let heap = Memory.Heap.create ~mode:Memory.Heap.Pool_backed () in
    Test.make ~name:"heap: alloc+free 64B"
      (Staged.stage (fun () -> Memory.Heap.free (Memory.Heap.alloc heap 64)))
  in
  let histogram =
    let h = Metrics.Histogram.create () in
    let i = ref 0 in
    Test.make ~name:"histogram: add sample"
      (Staged.stage (fun () ->
           incr i;
           Metrics.Histogram.add h (!i land 0xfffff)))
  in
  [ sched_switch; waker; checksum; tcp_rx; heap_ops; histogram ]

let run_micro () =
  let open Bechamel in
  say "@.Microbenchmarks (real ns on this machine; one row per operation)@.";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let tests = micro_tests () in
  let table =
    Metrics.Table.create ~title:"Microbenchmarks" ~columns:[ "operation"; "ns/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
          instance results
      in
      Hashtbl.iter
        (fun name result ->
          let est =
            match Analyze.OLS.estimates result with Some [ e ] -> e | Some _ | None -> nan
          in
          let r2 = match Analyze.OLS.r_square result with Some r -> r | None -> nan in
          Metrics.Table.add_row table
            [ name; Printf.sprintf "%.1f" est; Printf.sprintf "%.4f" r2 ])
        ols)
    tests;
  Metrics.Table.print table;
  say "Note: the dsched row covers 2000 dispatches plus world setup;@.";
  say "divide by ~2000 for the per-switch cost the paper quotes in cycles.@."

(* ---------- ablations ---------- *)

let run_ablation () =
  say "@.Ablations (design choices DESIGN.md calls out)@.";
  (* Congestion control: Cubic vs NewReno vs none on the echo RTT. *)
  let cc_table =
    Metrics.Table.create ~title:"Ablation: Catnip congestion control (64B echo)"
      ~columns:[ "cc"; "avg RTT"; "p99" ]
  in
  List.iter
    (fun (name, cc) ->
      let config = { Tcp.Stack.default_config with Tcp.Stack.cc } in
      let w = Harness.Common.make_world () in
      let server =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:1
          ~tcp_config:config Demikernel.Boot.Catnip_os
      in
      let client =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:2
          ~tcp_config:config Demikernel.Boot.Catnip_os
      in
      let rtts = Metrics.Histogram.create () in
      Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
      Demikernel.Boot.run_app client
        (Apps.Echo.client
           ~dst:(Demikernel.Boot.endpoint server 7)
           ~msg_size:64 ~count:500
           ~record:(Metrics.Histogram.add rtts));
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Harness.Common.run_world w;
      Metrics.Table.add_row cc_table
        [
          name;
          Metrics.Table.cell_ns (int_of_float (Metrics.Histogram.mean rtts));
          Metrics.Table.cell_ns (Metrics.Histogram.p99 rtts);
        ])
    [ ("cubic", Tcp.Cc.Cubic); ("newreno", Tcp.Cc.Newreno); ("none", Tcp.Cc.None_cc) ];
  Metrics.Table.print cc_table;
  (* Loss resilience: echo under increasing frame loss (exercises fast
     retransmit + RTO machinery end to end). *)
  let loss_table =
    Metrics.Table.create ~title:"Ablation: Catnip echo under frame loss"
      ~columns:[ "loss"; "avg RTT"; "p99"; "retransmits" ]
  in
  List.iter
    (fun loss ->
      let w = Harness.Common.make_world ~loss () in
      let server =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:1
          Demikernel.Boot.Catnip_os
      in
      let client =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:2
          Demikernel.Boot.Catnip_os
      in
      let rtts = Metrics.Histogram.create () in
      Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
      Demikernel.Boot.run_app client
        (Apps.Echo.client
           ~dst:(Demikernel.Boot.endpoint server 7)
           ~msg_size:64 ~count:500
           ~record:(Metrics.Histogram.add rtts));
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Harness.Common.run_world w;
      let retx =
        match (server.Demikernel.Boot.catnip, client.Demikernel.Boot.catnip) with
        | Some s, Some c ->
            Tcp.Stack.total_retransmits (Demikernel.Catnip.stack s)
            + Tcp.Stack.total_retransmits (Demikernel.Catnip.stack c)
        | _, _ -> 0
      in
      Metrics.Table.add_row loss_table
        [
          Printf.sprintf "%.1f%%" (loss *. 100.);
          Metrics.Table.cell_ns (int_of_float (Metrics.Histogram.mean rtts));
          Metrics.Table.cell_ns (Metrics.Histogram.p99 rtts);
          string_of_int retx;
        ])
    [ 0.0; 0.001; 0.01 ];
  Metrics.Table.print loss_table;
  (* SACK: bulk transfer under loss with and without selective acks. *)
  let sack_table =
    Metrics.Table.create ~title:"Ablation: SACK under 2% loss (2MB bulk transfer)"
      ~columns:[ "sack"; "transfer time"; "retransmits" ]
  in
  List.iter
    (fun (name, use_sack) ->
      let config = { Tcp.Stack.default_config with Tcp.Stack.use_sack } in
      let w = Harness.Common.make_world ~loss:0.02 () in
      let server =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:1
          ~tcp_config:config Demikernel.Boot.Catnip_os
      in
      let client =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:2
          ~tcp_config:config Demikernel.Boot.Catnip_os
      in
      let finished_at = ref 0 in
      Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
      Demikernel.Boot.run_app client
        (Apps.Echo.stream_client
           ~dst:(Demikernel.Boot.endpoint server 7)
           ~msg_size:32_768 ~count:64 ~window:8
           ~on_done:(fun () -> finished_at := Engine.Sim.now w.Harness.Common.sim));
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Harness.Common.run_world w;
      let retx =
        match (server.Demikernel.Boot.catnip, client.Demikernel.Boot.catnip) with
        | Some s, Some c ->
            Tcp.Stack.total_retransmits (Demikernel.Catnip.stack s)
            + Tcp.Stack.total_retransmits (Demikernel.Catnip.stack c)
        | _, _ -> 0
      in
      Metrics.Table.add_row sack_table
        [ name; Metrics.Table.cell_ns !finished_at; string_of_int retx ])
    [ ("on", true); ("off", false) ];
  Metrics.Table.print sack_table;
  (* Catmint flow-control window: throughput under load vs credit
     grant size (§6.2's message-based send windows). *)
  let window_table =
    Metrics.Table.create ~title:"Ablation: Catmint credit window (64B echo, 600 kops offered)"
      ~columns:[ "window"; "achieved kops"; "p99" ]
  in
  List.iter
    (fun window ->
      let r =
        Harness.Fig_throughput.demi_open_loop ~catmint_window:window
          ~flavor:Demikernel.Boot.Catmint_os ~proto:Harness.Common.Echo_tcp ~msg_size:64
          ~rate_per_sec:600_000. ~duration_ns:10_000_000 ()
      in
      Metrics.Table.add_row window_table
        [
          string_of_int window;
          Metrics.Table.cell_f ~decimals:0 (r.Baselines.Kb_lib.achieved_per_sec /. 1e3);
          Metrics.Table.cell_ns (Metrics.Histogram.p99 r.Baselines.Kb_lib.latencies);
        ])
    [ 2; 8; 64 ];
  Metrics.Table.print window_table

(* ---------- robustness of the reproduction ---------- *)

let run_robustness () =
  say "@.Robustness: do the Figure 5 orderings depend on tuned constants?@.";
  Harness.Common.default_count := 300;
  let table =
    Metrics.Table.create ~title:"Sensitivity: headline orderings under cost perturbations"
      ~columns:[ "perturbation"; "orderings"; "mean RTTs (us)" ]
  in
  let base = Net.Cost.bare_metal in
  let cases =
    [
      ("baseline", base);
      ("kernel wakeup x0.5", { base with Net.Cost.kernel_wakeup_ns = base.Net.Cost.kernel_wakeup_ns / 2 });
      ("kernel wakeup x2", { base with Net.Cost.kernel_wakeup_ns = base.Net.Cost.kernel_wakeup_ns * 2 });
      ("rdma hw x2", { base with Net.Cost.rdma_hw_ns = base.Net.Cost.rdma_hw_ns * 2 });
      ("nic hw x0.5", { base with Net.Cost.nic_hw_ns = base.Net.Cost.nic_hw_ns / 2 });
      ("tcp tx x2", { base with Net.Cost.tcp_tx_ns = base.Net.Cost.tcp_tx_ns * 2 });
      ("switch x2", { base with Net.Cost.switch_ns = base.Net.Cost.switch_ns * 2 });
      ("libos sched x2", { base with Net.Cost.libos_sched_ns = base.Net.Cost.libos_sched_ns * 2 });
    ]
  in
  List.iter
    (fun (name, cost) ->
      let ok, summary = Harness.Fig_latency.fig5_orderings_hold ~cost () in
      Metrics.Table.add_row table [ name; (if ok then "hold" else "BROKEN"); summary ])
    cases;
  Metrics.Table.print table;
  (* Seed sensitivity: identical workload, different worlds. *)
  let seed_table =
    Metrics.Table.create ~title:"Sensitivity: catnip echo across seeds"
      ~columns:[ "seed"; "avg RTT"; "p99" ]
  in
  List.iter
    (fun seed ->
      let w = Harness.Common.make_world ~seed () in
      let server =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:1
          Demikernel.Boot.Catnip_os
      in
      let client =
        Demikernel.Boot.make w.Harness.Common.sim w.Harness.Common.fabric ~index:2
          Demikernel.Boot.Catnip_os
      in
      let rtts = Metrics.Histogram.create () in
      Demikernel.Boot.run_app server (Apps.Echo.server ~port:7);
      Demikernel.Boot.run_app client
        (Apps.Echo.client
           ~dst:(Demikernel.Boot.endpoint server 7)
           ~msg_size:64 ~count:300
           ~record:(Metrics.Histogram.add rtts));
      Demikernel.Boot.start server;
      Demikernel.Boot.start client;
      Harness.Common.run_world w;
      Metrics.Table.add_row seed_table
        [
          Int64.to_string seed;
          Metrics.Table.cell_ns (int_of_float (Metrics.Histogram.mean rtts));
          Metrics.Table.cell_ns (Metrics.Histogram.p99 rtts);
        ])
    [ 1L; 2L; 3L; 42L; 1337L ];
  Metrics.Table.print seed_table

(* ---------- driver ---------- *)

let run_all ~full =
  if full then begin
    Harness.Common.default_count := 20_000;
    Harness.Fig_apps.relay_count := 20_000
  end;
  Harness.Loc.print ~title:"Table 2: library OS sizes (this reproduction)" (Harness.Loc.table2 ());
  Harness.Loc.print ~title:"Table 3: application sizes (POSIX vs Demikernel)"
    (Harness.Loc.table3 ());
  say "@.Cost profile: %a@." Net.Cost.pp Net.Cost.bare_metal;
  Harness.Fig_latency.print ~title:"Figure 5: echo RTTs, 64B, Linux bare metal"
    (Harness.Fig_latency.fig5 ());
  Harness.Fig_latency.print ~title:"Figure 6a: echo on the Windows cluster profile"
    (Harness.Fig_latency.fig6_windows ());
  Harness.Fig_latency.print ~title:"Figure 6b: echo in the Azure VM profile"
    (Harness.Fig_latency.fig6_azure ());
  Harness.Fig_latency.print ~title:"Figure 7: echo with synchronous logging to disk"
    (Harness.Fig_latency.fig7 ());
  Harness.Fig_throughput.print_fig8 (Harness.Fig_throughput.fig8 ());
  Harness.Fig_throughput.print_fig9
    (Harness.Fig_throughput.fig9 ?duration_ms:(if full then Some 100 else None) ());
  Harness.Fig_apps.print_fig10 (Harness.Fig_apps.fig10 ());
  Harness.Fig_apps.print_fig11 (Harness.Fig_apps.fig11 ());
  Harness.Fig_apps.print_fig12
    (Harness.Fig_apps.fig12 ?txns:(if full then Some 10_000 else None) ());
  run_ablation ();
  run_robustness ();
  run_micro ()

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  Harness.Common.default_count := 2_000;
  Harness.Fig_apps.relay_count := 2_000;
  match arg with
  | "all" -> run_all ~full:false
  | "full" -> run_all ~full:true
  | "table2" ->
      Harness.Loc.print ~title:"Table 2: library OS sizes" (Harness.Loc.table2 ())
  | "table3" ->
      Harness.Loc.print ~title:"Table 3: application sizes" (Harness.Loc.table3 ())
  | "fig5" ->
      Harness.Fig_latency.print ~title:"Figure 5: echo RTTs" (Harness.Fig_latency.fig5 ())
  | "fig6" ->
      Harness.Fig_latency.print ~title:"Figure 6a: Windows"
        (Harness.Fig_latency.fig6_windows ());
      Harness.Fig_latency.print ~title:"Figure 6b: Azure" (Harness.Fig_latency.fig6_azure ())
  | "fig7" ->
      Harness.Fig_latency.print ~title:"Figure 7: echo + sync logging"
        (Harness.Fig_latency.fig7 ())
  | "fig8" -> Harness.Fig_throughput.print_fig8 (Harness.Fig_throughput.fig8 ())
  | "fig9" -> Harness.Fig_throughput.print_fig9 (Harness.Fig_throughput.fig9 ())
  | "fig10" -> Harness.Fig_apps.print_fig10 (Harness.Fig_apps.fig10 ())
  | "fig11" -> Harness.Fig_apps.print_fig11 (Harness.Fig_apps.fig11 ())
  | "fig12" -> Harness.Fig_apps.print_fig12 (Harness.Fig_apps.fig12 ())
  | "ablation" -> run_ablation ()
  | "robustness" -> run_robustness ()
  | "micro" -> run_micro ()
  | "wallclock" ->
      (* wallclock [quick] [--out FILE] *)
      let rest = Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)) in
      let quick = List.mem "quick" rest in
      let rec out_of = function
        | "--out" :: path :: _ -> Some path
        | _ :: rest -> out_of rest
        | [] -> None
      in
      (match out_of rest with
      | Some out -> Wallclock.run ~quick ~out ()
      | None -> Wallclock.run ~quick ())
  | "scale" ->
      (* scale [quick] [--pr N] [--out FILE]; the artifact defaults to
         BENCH_pr<N>.json so the file name tracks the PR that produced
         it (PR 8's run was committed under its own number; --pr keeps
         later reruns honestly labelled). *)
      let rest = Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)) in
      let quick = List.mem "quick" rest in
      let rec out_of = function
        | "--out" :: path :: _ -> Some path
        | _ :: rest -> out_of rest
        | [] -> None
      in
      let rec pr_of = function
        | "--pr" :: n :: _ -> (
            match int_of_string_opt n with
            | Some pr when pr > 0 -> pr
            | Some _ | None ->
                prerr_endline ("scale: --pr expects a positive integer, got " ^ n);
                exit 1)
        | _ :: rest -> pr_of rest
        | [] -> 10
      in
      let pr = pr_of rest in
      (match out_of rest with
      | Some out -> Scale.run ~quick ~pr ~out ()
      | None -> Scale.run ~quick ~pr ())
  | "compare" ->
      (* compare [--dir D]: validate every committed BENCH_pr*.json
         against its family schema and flag regressions between
         consecutive artifacts (the `make bench-guard` entry point). *)
      let rest = Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)) in
      let rec dir_of = function
        | "--dir" :: d :: _ -> Some d
        | _ :: rest -> dir_of rest
        | [] -> None
      in
      (match dir_of rest with Some dir -> Compare.run ~dir () | None -> Compare.run ())
  | "churnprobe" ->
      let runpt n =
        let a0 = Gc.allocated_bytes () in
        let s = Wallclock.churn ~conns:n ~rounds:1 ~msg_size:64 () in
        let a1 = Gc.allocated_bytes () in
        Printf.printf "conns=%d gc=%.1fMB marginal=%.0fB/conn wall=%.3f\n%!" n
          ((a1 -. a0) /. 1048576.)
          ((a1 -. a0) /. float_of_int n)
          s.Wallclock.wall_s
      in
      runpt 1000;
      runpt 1000;
      runpt 10000;
      runpt 10000
  | other ->
      prerr_endline ("unknown experiment: " ^ other);
      exit 1
