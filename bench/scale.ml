(* `bench -- scale`: how far does one simulated server stack scale in
   connection count? (PR 8; Demiflight instruments added in PR 9.)

   An open-loop Poisson/Zipf workload (Apps.Loadgen's schedule, §7.3's
   methodology) drives a TxnStore request handler behind one server
   stack from N concurrent TCP connections, N sweeping 10k → 100k → 1M.
   Like bench/wallclock.ml this measures the *host*: wall seconds and
   GC work (minor/major words) for the whole point, plus virtual-time
   latency quantiles measured from each request's scheduled arrival —
   queueing a coordinated client would hide lands in the tail.

   The world is the raw-stack mini-harness of wallclock.ml scaled out:
   one server stack plus ceil(N / 8192) client stacks (an ephemeral
   port range holds 16384 ports; half keeps churn reconnects clear of
   wraparound), joined by a constant-latency FIFO frame queue. Client
   connection state is indexed by [Stack.conn_slot] — the flat-TCB
   arena slot — so the driver's own demux is an array read, the same
   discipline Catnip uses.

   Honesty: each point is timed, and the sweep stops early when the
   projected next point would blow the wall budget (or allocation
   fails); the JSON record then shows the largest sustained point and
   the limiting factor instead of silently reporting a smaller sweep as
   complete. The gc-budget oracle stays armed throughout: steady polls
   (no frames, no arrivals, no timer work) must allocate zero minor
   words even with a million live TCBs.

   Demiflight (PR 9): latencies go into a Metrics.Hdr histogram —
   BENCH_pr8.json's 100k point reported p50 = p99 = 2015ns because
   Histogram's 1/32-wide buckets swallowed the whole distribution body;
   Hdr's 1/128 buckets with rank interpolation resolve it. Each
   completion also carries an exact three-way attribution
   (queue = app-side delay from scheduled arrival to socket write,
   wire = the constant fabric latency both ways, rest = everything the
   stacks and server added), retained by a deterministic reservoir plus
   an exact slowest-64 list and aggregated into cumulative quantile
   bands — per-band queue+wire+rest = total, exactly. A Flight ring
   stays armed across the whole point (recording only on busy polls;
   record itself is allocation-free so the gc oracle's zero-budget
   steady polls are unaffected), and an SLO threshold counts breaches
   and pins the worst op in the ring.

   Demifleet (PR 10): every request frame carries the 16-byte causal
   context, so the server can stamp its reply-build instant against the
   request's id with no side channel and no extra wire bytes. Each
   band then reports a second exact decomposition — queue / to_srv /
   from_srv — locating tail time on the request leg vs the reply leg. *)

module Stack = Tcp.Stack
module Heap = Memory.Heap
module Loadgen = Apps.Loadgen

let conns_per_stack = 8192
let frame_latency = 1_000
let burst = 64

(* One cumulative latency-quantile band: exact virtual-ns sums over
   the ops retained at or above the band's cut. Two decompositions of
   the same total, both exact: {queue, wire, rest} (PR 9) and the
   per-hop {queue, to_srv, from_srv} (PR 10) cut at the server's reply
   build — the causal context every request frame carries since
   Demifleet lets the server stamp each op without a side channel. *)
type band = {
  band : string;
  cut_ns : int;
  band_ops : int;
  queue_ns : int;
  wire_ns : int;
  rest_ns : int;
  to_srv_ns : int; (* socket write -> server builds the reply *)
  from_srv_ns : int; (* server reply build -> client completion *)
  total_ns : int; (* = queue + wire + rest = queue + to_srv + from_srv *)
}

type point = {
  conns : int;
  client_stacks : int;
  ops : int;
  wall_s : float;
  gc_minor_words : float;
  gc_major_words : float;
  gc_alloc_mb : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  lat_min_ns : int;
  lat_max_ns : int;
  completed : int;
  reconnects : int;
  frames : int;
  polls : int;
  steady_polls : int;
  gc_poll_violations : int;
  conns_peak : int;
  tcb_capacity : int;
  pool_errors : int; (* canary + double-free + UAF across both ends *)
  bands : band list;
  retained : int; (* distinct ops behind the bands *)
  slo_threshold_ns : int;
  slo_breaches : int;
  slo_worst_ns : int;
  flight_total : int;
  flight_kept : int;
  flight_dropped : int;
  flight_digest : string;
}

(* One logical client connection: survives churn (the underlying
   Stack.conn is replaced), owns the open-loop bookkeeping. *)
type lconn = {
  stack_idx : int; (* which client stack, 0-based *)
  churn : bool;
  mutable conn : Stack.conn option;
  mutable can_send : bool; (* Established fired on the current conn *)
  mutable acc : Apps.Framing.accum;
  pending : (int * int * int) Queue.t;
      (* (at_ns, sent_ns, seq) of requests awaiting responses; seq is
         the causal req id stamped into the frame's context. *)
  backlog : (int * int * string) Queue.t; (* (at_ns, seq, framed) awaiting a conn *)
  mutable since_birth : int;
  mutable reconnect_pending : bool; (* queued on reconnect_q *)
}

(* A growable conn_slot-indexed table — the driver-side analogue of
   Catnip's by_conn array. *)
type 'a slots = { mutable cells : 'a option array }

let slots () = { cells = Array.make 64 None }

let slot_find s conn =
  let slot = Stack.conn_slot conn in
  if slot < 0 || slot >= Array.length s.cells then None else s.cells.(slot)

let slot_set s conn v =
  let slot = Stack.conn_slot conn in
  let len = Array.length s.cells in
  if slot >= len then begin
    let bigger = Array.make (max (slot + 1) (len * 2)) None in
    Array.blit s.cells 0 bigger 0 len;
    s.cells <- bigger
  end;
  s.cells.(slot) <- v

let pool_errors stack =
  match Memory.Pool.sanitizer_report (Stack.tcb_pool stack) with
  | Some r ->
      r.Memory.Pool.canary_violations + r.Memory.Pool.double_frees
      + r.Memory.Pool.uaf_accesses
  | None -> 0

let run_point ~conns:n ~ops_per_conn ~churn_fraction ~churn_after ~rate_per_conn ~keys
    ~value_size ?(slo_ns = 4_000) () =
  let m = (n + conns_per_stack - 1) / conns_per_stack in
  let clock = ref 0 in
  let frames = ref 0 in
  let polls = ref 0 in
  (* Constant latency: arrival order == send order, one FIFO for the
     whole world. Destination is decoded from the Ethernet dst MAC —
     [Mac.of_index i] puts i+1 in the low 16 bits, and stack position p
     carries index p+1, so position = low16 - 2. This routes ARP
     replies and IPv4 alike; ARP requests are broadcast (low16 =
     0xffff) and fan out to every stack, which is cheap because each
     pair resolves exactly once. *)
  let q : (int * string) Queue.t = Queue.create () in
  let mac_lo frame = (Char.code frame.[4] lsl 8) lor Char.code frame.[5] in
  let heaps = Array.init (m + 1) (fun _ -> Heap.create ~mode:Heap.Pool_backed ()) in
  (* Deferred app work: stack events fire synchronously inside [input],
     so handlers only record; the poll loop below does the API calls.
     Client queues carry the owning stack's position so completion state
     can be found by (stack, conn_slot). *)
  let established_q : (int * Stack.conn) Queue.t = Queue.create () in
  let readable_client_q : (int * Stack.conn) Queue.t = Queue.create () in
  let readable_server_q : Stack.conn Queue.t = Queue.create () in
  let accept_ready_q : Stack.listener Queue.t = Queue.create () in
  let reconnect_q : lconn Queue.t = Queue.create () in
  let client_slots : lconn slots array = Array.init m (fun _ -> slots ()) in
  let srv_accum : Apps.Framing.accum slots = slots () in
  let client_events j = function
    | Stack.Established c -> Queue.add (j, c) established_q
    | Stack.Readable c -> Queue.add (j, c) readable_client_q
    | Stack.Closed c | Stack.Reset c -> (
        (* Synchronous: the slot is still valid during the event; only
           bookkeeping here, no stack calls. A churned lconn has already
           moved to a fresh conn — only react if this close is for the
           lconn's *current* incarnation (a server-side close or RST). *)
        match slot_find client_slots.(j) c with
        | Some lc ->
            slot_set client_slots.(j) c None;
            let current = match lc.conn with Some c' -> c' == c | None -> false in
            if current then begin
              lc.conn <- None;
              lc.can_send <- false;
              if (not (Queue.is_empty lc.backlog)) && not lc.reconnect_pending then begin
                lc.reconnect_pending <- true;
                Queue.add lc reconnect_q
              end
            end
        | None -> ())
    | Stack.Accept_ready _ | Stack.Push_completed _ | Stack.Udp_readable _ -> ()
  in
  let server_events = function
    | Stack.Accept_ready l -> Queue.add l accept_ready_q
    | Stack.Readable c -> Queue.add c readable_server_q
    | Stack.Closed c | Stack.Reset c -> slot_set srv_accum c None
    | Stack.Established _ | Stack.Push_completed _ | Stack.Udp_readable _ -> ()
  in
  let mk_iface idx =
    Tcp.Iface.create
      ~mac:(Net.Addr.Mac.of_index idx)
      ~ip:(Net.Addr.Ip.of_index idx)
      ~clock:(fun () -> !clock)
      ~tx_frame:(fun f -> Queue.add (!clock + frame_latency, f) q)
      ()
  in
  let server =
    Stack.create ~iface:(mk_iface 1) ~heap:heaps.(0) ~prng:(Engine.Prng.create 11L)
      ~events:server_events ()
  in
  let client_stacks =
    Array.init m (fun j ->
        Stack.create ~iface:(mk_iface (j + 2)) ~heap:heaps.(j + 1)
          ~prng:(Engine.Prng.create (Int64.of_int (100 + j)))
          ~events:(client_events j) ())
  in
  let stacks = Array.append [| server |] client_stacks in
  let nstacks = Array.length stacks in
  let port = 7447 in
  let _listener = Stack.tcp_listen server ~port ~backlog:(n + 16) in
  let server_ep = Net.Addr.endpoint (Net.Addr.Ip.of_index 1) port in
  let store : (string, int * string) Hashtbl.t = Hashtbl.create 1024 in
  (* seq -> virtual time the server built the reply; written in
     drain_server from the frame's causal context, consumed (and
     removed) at client completion. *)
  let srv_time : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let prng = Engine.Prng.create 4242L in
  let rate_per_sec = float_of_int n *. rate_per_conn in
  let pl = Loadgen.plan ~prng ~rate_per_sec ~keys ~theta:0.99 ~get_ratio:0.5 ~start_ns:0 in
  let value = String.make value_size 'v' in
  let latencies = Metrics.Hdr.create () in
  (* Demiflight retention: a deterministic reservoir over every
     completion plus the exact slowest-64, keyed by completion sequence
     number so the two sets dedup cleanly. Samples are
     (latency, seq, queue_delay, to_srv). *)
  let resv =
    Metrics.Reservoir.create ~capacity:4096 ~prng:(Engine.Prng.create 0x5ca1e_f11eL)
  in
  let slow_k = 64 in
  let slowest = ref [] in
  let slow_n = ref 0 in
  let offer_slow ((lat, seq, _, _) as sample) =
    let rec insert = function
      | [] -> [ sample ]
      | ((l, s, _, _) as hd) :: tl ->
          if (lat, seq) < (l, s) then sample :: hd :: tl else hd :: insert tl
    in
    if !slow_n < slow_k then begin
      slowest := insert !slowest;
      incr slow_n
    end
    else
      match !slowest with
      | (l, _, _, _) :: tl when lat > l -> slowest := insert tl
      | _ -> ()
  in
  let flight = Engine.Flight.create ~capacity:8192 () in
  let slo_breaches = ref 0 in
  let slo_worst = ref 0 in
  let ops_total = n * ops_per_conn in
  let issued = ref 0 and completed = ref 0 and reconnects = ref 0 in
  let churn_stride =
    if churn_fraction <= 0. then 0 else max 1 (int_of_float (1. /. churn_fraction))
  in
  let lconns =
    Array.init n (fun i ->
        {
          stack_idx = i / conns_per_stack;
          churn = churn_stride > 0 && i mod churn_stride = 0;
          conn = None;
          can_send = false;
          acc = Apps.Framing.create ();
          pending = Queue.create ();
          backlog = Queue.create ();
          since_birth = 0;
          reconnect_pending = false;
        })
  in
  let open_conn lc =
    let c = Stack.tcp_connect client_stacks.(lc.stack_idx) ~dst:server_ep in
    lc.conn <- Some c;
    lc.can_send <- false;
    lc.reconnect_pending <- false;
    lc.acc <- Apps.Framing.create ();
    slot_set client_slots.(lc.stack_idx) c (Some lc)
  in
  let send_framed lc framed at seq =
    match lc.conn with
    | Some c when lc.can_send ->
        let heap = heaps.(lc.stack_idx + 1) in
        let buf = Heap.alloc_of_string heap framed in
        Stack.tcp_send c [ buf ];
        (* Zero-copy discipline: the stack holds per-segment refs; the
           app drops its own reference right after the push. *)
        Heap.free buf;
        (* sent_ns = the socket write; everything before it is app-side
           queueing (poll granularity, backlog, reconnect waits). *)
        Queue.add (at, !clock, seq) lc.pending
    | Some _ -> Queue.add (at, seq, framed) lc.backlog
    | None ->
        Queue.add (at, seq, framed) lc.backlog;
        if not lc.reconnect_pending then begin
          lc.reconnect_pending <- true;
          Queue.add lc reconnect_q
        end
  in
  let flush_backlog lc =
    while lc.can_send && not (Queue.is_empty lc.backlog) do
      let at, seq, framed = Queue.pop lc.backlog in
      send_framed lc framed at seq
    done
  in
  let rr = ref 0 in
  let issue_one () =
    let o = Loadgen.next pl in
    let lc = lconns.(!rr) in
    rr := (!rr + 1) mod n;
    let body =
      Loadgen.encode_request Loadgen.Txn ~kind:o.Loadgen.kind
        ~key:(Apps.Workload.key_name o.Loadgen.key)
        ~value
    in
    (* Stamp the causal context (req = msg = the global issue sequence,
       hop 1): the server reads it back from the decoded frame and
       timestamps its reply build against the same id — per-hop
       attribution with zero extra wire bytes, since every frame
       carries the 16-byte context anyway. *)
    let seq = !issued + 1 in
    send_framed lc
      (Apps.Framing.encode_ctx ~req:seq ~msg:seq ~parent:0 ~hop:1 body)
      o.Loadgen.at_ns seq;
    incr issued
  in
  let drain_client lc =
    match lc.conn with
    | None -> ()
    | Some c ->
        let rec recv () =
          match Stack.tcp_recv c with
          | `Data buf ->
              Apps.Framing.feed lc.acc (Heap.to_string buf);
              Heap.free buf;
              recv ()
          | `Eof | `Nothing -> ()
        in
        recv ();
        let rec extract () =
          match Apps.Framing.next lc.acc with
          | Some _response ->
              (match Queue.take_opt lc.pending with
              | Some (at, sent, seq) ->
                  let lat = !clock - at in
                  Metrics.Hdr.add latencies lat;
                  (* Exact per-op attribution: lat >= queue + wire by
                     construction (the request and response each spend
                     frame_latency in the FIFO after the write), so
                     rest = lat - queue - wire is the stacks' and
                     server's share and the three parts sum to lat.
                     The per-hop split uses the server's reply-build
                     stamp: queue + to_srv + from_srv = lat, also
                     exactly, for any stamp inside [sent, now]. *)
                  let srv =
                    match Hashtbl.find_opt srv_time seq with
                    | Some t -> t
                    | None -> sent + frame_latency (* unstamped: split at arrival *)
                  in
                  Hashtbl.remove srv_time seq;
                  let sample = (lat, !completed, sent - at, srv - sent) in
                  Metrics.Reservoir.offer resv sample;
                  offer_slow sample;
                  if lat > slo_ns then begin
                    incr slo_breaches;
                    if lat > !slo_worst then slo_worst := lat;
                    Engine.Flight.record flight ~now:!clock ~cat:Engine.Trace.App
                      ~label:"slo.breach" lat (sent - at)
                  end;
                  incr completed;
                  lc.since_birth <- lc.since_birth + 1
              | None -> ());
              extract ()
          | None -> ()
        in
        extract ();
        if
          lc.churn
          && lc.since_birth >= churn_after
          && Queue.is_empty lc.pending
          && Stack.conn_state c = Stack.Established_st
        then begin
          (* Retire this incarnation and reconnect immediately — the
             old conn winds down through FIN/TIME_WAIT in the
             background while the replacement (a fresh arena slot)
             carries new requests, as a real churn client would. *)
          lc.since_birth <- 0;
          incr reconnects;
          Engine.Flight.record flight ~now:!clock ~cat:Engine.Trace.Libos ~label:"reconnect"
            (Stack.conn_slot c) !reconnects;
          Stack.tcp_close c;
          open_conn lc
        end
  in
  let drain_server c =
    match slot_find srv_accum c with
    | None -> ()
    | Some acc ->
        let rec recv () =
          match Stack.tcp_recv c with
          | `Data buf ->
              Apps.Framing.feed acc (Heap.to_string buf);
              Heap.free buf;
              recv ()
          | `Eof -> if Stack.conn_state c = Stack.Close_wait then Stack.tcp_close c
          | `Nothing -> ()
        in
        recv ();
        let rec respond () =
          match Apps.Framing.next acc with
          | Some msg ->
              (* The request's causal context survives the decode; stamp
                 the reply-build instant against its req id. *)
              let ctx = Apps.Framing.last acc in
              if ctx.Apps.Framing.c_req <> 0 then
                Hashtbl.replace srv_time ctx.Apps.Framing.c_req !clock;
              let reply = Apps.Txnstore.handle_request ~store msg in
              (match Stack.conn_state c with
              | Stack.Established_st | Stack.Close_wait ->
                  let buf = Heap.alloc_of_string heaps.(0) (Apps.Framing.encode reply) in
                  Stack.tcp_send c [ buf ];
                  Heap.free buf
              | _ -> ());
              respond ()
          | None -> ()
        in
        respond ()
  in
  let app_work () =
    let worked = ref false in
    while not (Queue.is_empty accept_ready_q) do
      worked := true;
      let l = Queue.pop accept_ready_q in
      let rec accept_all () =
        match Stack.tcp_accept l with
        | Some c ->
            slot_set srv_accum c (Some (Apps.Framing.create ()));
            drain_server c;
            accept_all ()
        | None -> ()
      in
      accept_all ()
    done;
    while not (Queue.is_empty established_q) do
      worked := true;
      let j, c = Queue.pop established_q in
      match slot_find client_slots.(j) c with
      | Some lc ->
          lc.can_send <- true;
          flush_backlog lc
      | None -> ()
    done;
    while not (Queue.is_empty readable_client_q) do
      worked := true;
      let j, c = Queue.pop readable_client_q in
      match slot_find client_slots.(j) c with Some lc -> drain_client lc | None -> ()
    done;
    while not (Queue.is_empty readable_server_q) do
      worked := true;
      drain_server (Queue.pop readable_server_q)
    done;
    while not (Queue.is_empty reconnect_q) do
      worked := true;
      open_conn (Queue.pop reconnect_q)
    done;
    !worked
  in
  let gc_site = Memory.Gcbudget.site "scale.poll" in
  let run () =
    (* Open every long-lived connection up front: N SYNs hit the
       listener in bursts, the arena grows to its high-water mark. *)
    Array.iter open_conn lconns;
    let guard = ref (200 * n + 50_000_000) in
    let continue = ref true in
    while !continue do
      decr guard;
      if !guard = 0 then failwith "scale: no quiescence";
      incr polls;
      let activity0 = ref 0 in
      for i = 0 to nstacks - 1 do
        activity0 := !activity0 + Stack.timer_activity (Array.unsafe_get stacks i)
      done;
      Memory.Gcbudget.enter gc_site;
      (* Deliver one burst of due frames (the rx_burst analogue). *)
      let delivered = ref 0 in
      while
        !delivered < burst
        && (not (Queue.is_empty q))
        &&
        let at, _ = Queue.peek q in
        at <= !clock
      do
        let _, frame = Queue.pop q in
        let lo = mac_lo frame in
        if lo = 0xffff then
          for i = 0 to nstacks - 1 do
            Stack.input (Array.unsafe_get stacks i) frame
          done
        else Stack.input stacks.(lo - 2) frame;
        incr delivered;
        incr frames
      done;
      (* The burst marker rides the ring only when frames moved — a
         steady poll records nothing, so the ring's contents describe
         activity, and recording stays off the zero-alloc audit path
         anyway (Flight.record allocates nothing). *)
      if !delivered > 0 then
        Engine.Flight.record flight ~now:!clock ~cat:Engine.Trace.Device ~label:"rx.burst"
          !delivered (Queue.length q);
      (* Open-loop arrivals due at this instant. *)
      let issued_now = ref 0 in
      while !issued < ops_total && Loadgen.peek_at pl <= !clock do
        issue_one ();
        incr issued_now
      done;
      if !issued_now > 0 then
        Engine.Flight.record flight ~now:!clock ~cat:Engine.Trace.App ~label:"arrivals"
          !issued_now !issued;
      (* Per-poll timer/ack work, as the Catnip fast path does it. *)
      for i = 0 to nstacks - 1 do
        let s = Array.unsafe_get stacks i in
        Stack.flush_acks s;
        Stack.on_timer s
      done;
      let activity1 = ref 0 in
      for i = 0 to nstacks - 1 do
        activity1 := !activity1 + Stack.timer_activity (Array.unsafe_get stacks i)
      done;
      if !delivered = 0 && !issued_now = 0 && !activity1 = !activity0 then
        Memory.Gcbudget.leave_steady gc_site
      else Memory.Gcbudget.leave_busy gc_site;
      let worked = app_work () in
      if (not worked) && !delivered = 0 && !issued_now = 0 then begin
        if !completed >= ops_total then continue := false
        else begin
          (* Nothing due now: park to the next frame arrival, timer
             deadline or scheduled send, whichever is first. *)
          let next_frame = if Queue.is_empty q then max_int else fst (Queue.peek q) in
          let next_arrival = if !issued < ops_total then Loadgen.peek_at pl else max_int in
          let t = ref (min next_frame next_arrival) in
          for i = 0 to nstacks - 1 do
            t := min !t (Stack.next_timer_ns (Array.unsafe_get stacks i))
          done;
          if !t = max_int then begin
            Printf.eprintf "scale: WARNING idle world with %d/%d ops completed\n%!"
              !completed ops_total;
            continue := false
          end
          else clock := max !clock !t
        end
      end
    done
  in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  run ();
  let t1 = Unix.gettimeofday () in
  let gc1 = Gc.quick_stat () in
  let minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let major_words = gc1.Gc.major_words -. gc0.Gc.major_words in
  let site_stats =
    List.find_opt
      (fun s -> s.Memory.Gcbudget.site_name = "scale.poll")
      (Memory.Gcbudget.sites ())
  in
  let steady, violations =
    match site_stats with
    | Some s -> (s.Memory.Gcbudget.measured, s.Memory.Gcbudget.site_violations)
    | None -> (0, 0)
  in
  let errors = Array.fold_left (fun acc s -> acc + pool_errors s) 0 stacks in
  let stats = Stack.conn_stats server in
  (* Cumulative quantile bands over the retained ops. Within a band the
     three attribution parts sum to the total exactly: wire is the
     constant FIFO latency both ways and rest is defined as the
     remainder per op, before summation. *)
  let retained_ops = List.sort_uniq compare (Metrics.Reservoir.to_list resv @ !slowest) in
  let wire_per_op = 2 * frame_latency in
  let mk_band name cut =
    let in_band = List.filter (fun (lat, _, _, _) -> lat >= cut) retained_ops in
    let nops = List.length in_band in
    let queue = List.fold_left (fun acc (_, _, q, _) -> acc + q) 0 in_band in
    let to_srv = List.fold_left (fun acc (_, _, _, t) -> acc + t) 0 in_band in
    let total = List.fold_left (fun acc (lat, _, _, _) -> acc + lat) 0 in_band in
    let wire = nops * wire_per_op in
    {
      band = name;
      cut_ns = cut;
      band_ops = nops;
      queue_ns = queue;
      wire_ns = wire;
      rest_ns = total - queue - wire;
      to_srv_ns = to_srv;
      (* per-op from_srv = lat - queue - to_srv, so the band remainder
         is exactly the per-op sums. *)
      from_srv_ns = total - queue - to_srv;
      total_ns = total;
    }
  in
  let bands =
    [
      mk_band "all" (Metrics.Hdr.min latencies);
      mk_band "p90+" (Metrics.Hdr.quantile latencies 0.90);
      mk_band "p99+" (Metrics.Hdr.quantile latencies 0.99);
      mk_band "p99.9+" (Metrics.Hdr.quantile latencies 0.999);
    ]
  in
  {
    conns = n;
    client_stacks = m;
    ops = ops_total;
    wall_s = t1 -. t0;
    gc_minor_words = minor_words;
    gc_major_words = major_words;
    gc_alloc_mb = minor_words *. 8. /. 1_048_576.;
    p50_ns = Metrics.Hdr.p50 latencies;
    p90_ns = Metrics.Hdr.quantile latencies 0.90;
    p99_ns = Metrics.Hdr.p99 latencies;
    p999_ns = Metrics.Hdr.p999 latencies;
    lat_min_ns = Metrics.Hdr.min latencies;
    lat_max_ns = Metrics.Hdr.max latencies;
    completed = !completed;
    reconnects = !reconnects;
    frames = !frames;
    polls = !polls;
    steady_polls = steady;
    gc_poll_violations = violations;
    conns_peak = stats.Stack.peak;
    tcb_capacity = Memory.Pool.capacity (Stack.tcb_pool server);
    pool_errors = errors;
    bands;
    retained = List.length retained_ops;
    slo_threshold_ns = slo_ns;
    slo_breaches = !slo_breaches;
    slo_worst_ns = !slo_worst;
    flight_total = Engine.Flight.total flight;
    flight_kept = Engine.Flight.kept flight;
    flight_dropped = Engine.Flight.dropped flight;
    flight_digest = Engine.Flight.digest flight;
  }

(* ---------- churn comparison against the PR 6 record ----------

   BENCH_pr6.json's committed churn numbers (10k connections, this
   machine, pre-flat-TCB stack). Re-running wallclock.ml's own churn
   harness on the pooled stack quantifies the GC win the arena buys at
   the 10k point. *)

let pr6_churn_wall_s = 0.1883
let pr6_churn_gc_mb = 184.3

(* ---------- JSON emission + self-validation ---------- *)

let band_json b =
  Printf.sprintf
    {|{ "band": "%s", "cut_ns": %d, "ops": %d, "queue_ns": %d, "wire_ns": %d, "rest_ns": %d, "to_srv_ns": %d, "from_srv_ns": %d, "total_ns": %d }|}
    b.band b.cut_ns b.band_ops b.queue_ns b.wire_ns b.rest_ns b.to_srv_ns b.from_srv_ns
    b.total_ns

let point_json p =
  Printf.sprintf
    {|    { "conns": %d, "client_stacks": %d, "ops": %d, "completed": %d, "wall_s": %.4f, "gc_minor_words": %.0f, "gc_major_words": %.0f, "gc_alloc_mb": %.1f, "p50_ns": %d, "p90_ns": %d, "p99_ns": %d, "p999_ns": %d, "lat_min_ns": %d, "lat_max_ns": %d, "reconnects": %d, "frames": %d, "polls": %d, "steady_polls": %d, "gc_poll_violations": %d, "conns_peak": %d, "tcb_capacity": %d, "pool_errors": %d,
      "attribution": { "retained_ops": %d, "bands": [ %s ] },
      "slo": { "threshold_ns": %d, "breaches": %d, "worst_ns": %d },
      "flight": { "capacity": 8192, "total": %d, "kept": %d, "dropped": %d, "digest": "%s" } }|}
    p.conns p.client_stacks p.ops p.completed p.wall_s p.gc_minor_words p.gc_major_words
    p.gc_alloc_mb p.p50_ns p.p90_ns p.p99_ns p.p999_ns p.lat_min_ns p.lat_max_ns p.reconnects
    p.frames p.polls p.steady_polls p.gc_poll_violations p.conns_peak p.tcb_capacity
    p.pool_errors p.retained
    (String.concat ", " (List.map band_json p.bands))
    p.slo_threshold_ns p.slo_breaches p.slo_worst_ns p.flight_total p.flight_kept
    p.flight_dropped p.flight_digest

(* Minimal structural JSON check: balanced containers outside strings,
   sane escapes — enough to catch a malformed printf before the file is
   committed as a benchmark record. *)
let json_well_formed s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then begin
        if ch = '\\' then esc := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let required_keys =
  [
    "\"pr\"";
    "\"sweep\"";
    "\"attempted\"";
    "\"largest_sustained\"";
    "\"limiting_factor\"";
    "\"gc_poll_violations\"";
    "\"p999_ns\"";
    "\"p90_ns\"";
    "\"attribution\"";
    "\"bands\"";
    "\"to_srv_ns\"";
    "\"from_srv_ns\"";
    "\"slo\"";
    "\"flight\"";
    "\"churn_10k\"";
  ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let validate_json path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let missing = List.filter (fun k -> not (contains_sub s k)) required_keys in
  if not (json_well_formed s) then begin
    Printf.eprintf "scale: %s is not well-formed JSON\n%!" path;
    exit 1
  end;
  if missing <> [] then begin
    Printf.eprintf "scale: %s is missing keys: %s\n%!" path (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "scale: JSON schema OK (%s)\n%!" path

(* ---------- the sweep driver ---------- *)

let default_sweep = [ 10_000; 100_000; 1_000_000 ]
let quick_sweep = [ 1_000 ]

(* Wall budget for the whole sweep; a projected overrun stops the sweep
   and is recorded as the limiting factor rather than hidden. *)
let wall_budget_s = 150.

let run ~quick ?(pr = 10) ?out () =
  let out = match out with Some o -> o | None -> Printf.sprintf "BENCH_pr%d.json" pr in
  Memory.Gcbudget.set_armed true;
  let sweep = if quick then quick_sweep else default_sweep in
  let ops_per_conn = 6 in
  let churn_fraction = 0.1 in
  let churn_after = 3 in
  let rate_per_conn = 20_000. in
  let keys = 1024 in
  let value_size = 32 in
  let attempted = List.fold_left max 0 sweep in
  (* Churn comparison at the PR 6 point first, on a clean heap — the
     sweep's 100k/1M points leave the major heap big enough to skew a
     later measurement. Uses PR 6's own harness for comparability. *)
  let churn = Wallclock.churn ~conns:10_000 ~rounds:1 ~msg_size:64 () in
  Printf.printf "churn10k wall=%.3fs gc=%.1fMB (pr6: %.3fs %.1fMB)\n%!" churn.Wallclock.wall_s
    churn.Wallclock.gc_alloc_mb pr6_churn_wall_s pr6_churn_gc_mb;
  let points = ref [] in
  let limiting = ref "none" in
  let elapsed = ref 0. in
  let rec go = function
    | [] -> ()
    | n :: rest -> (
        let projected =
          match !points with
          | p :: _ when p.conns > 0 ->
              p.wall_s *. (float_of_int n /. float_of_int p.conns) *. 1.3
          | _ -> 0.
        in
        if !elapsed +. projected > wall_budget_s then
          limiting := "wall"
        else
          match
            Memory.Gcbudget.reset ();
            run_point ~conns:n ~ops_per_conn ~churn_fraction ~churn_after ~rate_per_conn
              ~keys ~value_size ()
          with
          | p ->
              elapsed := !elapsed +. p.wall_s;
              points := p :: !points;
              Printf.printf
                "scale conns=%d stacks=%d ops=%d wall=%.3fs gc=%.1fMB p50=%dns p90=%dns p99=%dns p999=%dns reconnects=%d peak=%d\n%!"
                p.conns p.client_stacks p.ops p.wall_s p.gc_alloc_mb p.p50_ns p.p90_ns
                p.p99_ns p.p999_ns p.reconnects p.conns_peak;
              Printf.printf "gc-budget scale steady_polls=%d violations=%d\n%!"
                p.steady_polls p.gc_poll_violations;
              Printf.printf "slo threshold=%dns breaches=%d worst=%dns; flight %d/%d kept\n%!"
                p.slo_threshold_ns p.slo_breaches p.slo_worst_ns p.flight_kept p.flight_total;
              List.iter
                (fun b ->
                  if b.queue_ns + b.wire_ns + b.rest_ns <> b.total_ns then begin
                    Printf.eprintf "scale: band %s attribution does not sum (conns=%d)\n%!"
                      b.band p.conns;
                    exit 1
                  end;
                  if b.queue_ns + b.to_srv_ns + b.from_srv_ns <> b.total_ns then begin
                    Printf.eprintf
                      "scale: band %s per-hop attribution does not sum (conns=%d)\n%!"
                      b.band p.conns;
                    exit 1
                  end;
                  Printf.printf
                    "  band %-7s cut=%dns ops=%d queue=%dns wire=%dns rest=%dns \
                     to_srv=%dns from_srv=%dns total=%dns\n\
                     %!"
                    b.band b.cut_ns b.band_ops b.queue_ns b.wire_ns b.rest_ns b.to_srv_ns
                    b.from_srv_ns b.total_ns)
                p.bands;
              go rest
          | exception Out_of_memory -> limiting := "memory")
  in
  go sweep;
  let points = List.rev !points in
  let largest = List.fold_left (fun acc p -> max acc p.conns) 0 points in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "pr": %d,
  "mode": "%s",
  "workload": { "target": "txnstore", "ops_per_conn": %d, "rate_per_conn_per_sec": %.0f, "get_ratio": 0.5, "theta": 0.99, "keys": %d, "value_size": %d, "churn_fraction": %.2f, "churn_after_ops": %d, "frame_latency_ns": %d },
  "sweep": [
%s
  ],
  "attempted": %d,
  "largest_sustained": %d,
  "limiting_factor": "%s",
  "wall_budget_s": %.0f,
  "churn_10k": { "wall_s": %.4f, "gc_alloc_mb": %.1f, "pr6_wall_s": %.4f, "pr6_gc_mb": %.1f, "gc_reduction": %.2f, "speedup": %.2f }
}
|}
    pr
    (if quick then "quick" else "default")
    ops_per_conn rate_per_conn keys value_size churn_fraction churn_after frame_latency
    (String.concat ",\n" (List.map point_json points))
    attempted largest !limiting wall_budget_s churn.Wallclock.wall_s
    churn.Wallclock.gc_alloc_mb pr6_churn_wall_s pr6_churn_gc_mb
    (if churn.Wallclock.gc_alloc_mb > 0. then pr6_churn_gc_mb /. churn.Wallclock.gc_alloc_mb
     else 0.)
    (if churn.Wallclock.wall_s > 0. then pr6_churn_wall_s /. churn.Wallclock.wall_s else 0.);
  close_out oc;
  Printf.printf "wrote %s (largest_sustained=%d, limiting_factor=%s)\n%!" out largest
    !limiting;
  validate_json out;
  Memory.Gcbudget.set_armed false
