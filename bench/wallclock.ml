(* Wall-clock performance harness (PR 3; baselines re-anchored for the
   PR 6 allocation-discipline work).

   Everything else in bench/ measures *virtual* time; this mode measures
   how fast the simulator itself runs on the host: real events/sec,
   frames/sec and GC allocation for (a) the standard Catnip echo world
   and (b) a 10k-connection churn scenario that hammers the per-poll
   timer/ack paths (`next_timer` / `on_timer` / `flush_acks`) exactly
   the way the Catnip fast path does.  Results go to BENCH_pr6.json.
   Since PR 6 the headline metric is GC allocation: the Demialloc pass
   and gc-budget oracle drove the steady-poll paths to zero words, and
   the gc_reduction keys report the whole-run win against the
   pre-change tree.

   The churn driver is a deterministic two-stack mini-world (same shape
   as test_tcp.ml's Pair harness): stacks joined by a constant-latency
   frame queue, a manual clock, and a poll loop that mirrors
   Catnip.fast_path — deliver a burst of frames, then flush acks, fire
   timers and peek the next deadline on both stacks.  Before the timer
   wheel, each of those peeks/fires cost O(n log n) in live connections;
   the whole point of this harness is to make that cost visible in real
   seconds. *)

module Stack = Tcp.Stack
module Heap = Memory.Heap

type sample = {
  label : string;
  wall_s : float;
  events : int; (* sim events (echo) or poll iterations (churn) *)
  frames : int;
  gc_alloc_mb : float;
  ops : int; (* echos completed / connections churned *)
}

let time_and_gc f =
  let gc0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let gc1 = Gc.allocated_bytes () in
  (r, t1 -. t0, (gc1 -. gc0) /. 1_048_576.)

(* --- Scenario 1: the standard echo world, wall-clock edition --- *)

let echo ~count () =
  let sim = Engine.Sim.create ~seed:1L () in
  let fabric = Net.Fabric.create sim ~cost:Net.Cost.bare_metal () in
  let server = Demikernel.Boot.make sim fabric ~index:1 Demikernel.Boot.Catnip_os in
  let client = Demikernel.Boot.make sim fabric ~index:2 Demikernel.Boot.Catnip_os in
  let done_ = ref 0 in
  Demikernel.Boot.run_app server (Apps.Echo.server ~port:7 ~persist:false);
  Demikernel.Boot.run_app client
    (Apps.Echo.client
       ~dst:(Demikernel.Boot.endpoint server 7)
       ~msg_size:64 ~count
       ~record:(fun _ -> incr done_));
  Demikernel.Boot.start server;
  Demikernel.Boot.start client;
  let (), wall_s, gc_alloc_mb =
    time_and_gc (fun () ->
        Engine.Sim.run ~until:(Engine.Clock.s 600) sim;
        Engine.Sim.teardown sim)
  in
  {
    label = "echo";
    wall_s;
    events = Engine.Sim.events_processed sim;
    frames = (Net.Fabric.stats fabric).Net.Fabric.frames_delivered;
    gc_alloc_mb;
    ops = !done_;
  }

(* --- Scenario 2: 10k-connection churn --- *)

(* Per-client-connection app state: how many request/response rounds
   remain, and how many echo bytes of the current round have arrived. *)
type churn_client = { mutable rounds_left : int; mutable got : int }

let churn ?(burst = 64) ~conns:n ~rounds ~msg_size () =
  let latency = 1_000 in
  let clock = ref 0 in
  let frames = ref 0 in
  let polls = ref 0 in
  (* Constant latency means arrival order == send order: a FIFO queue
     keeps the driver's own cost O(1)/frame so the stacks dominate. *)
  let q : (int * int * string) Queue.t = Queue.create () in
  let heap_a = Heap.create ~mode:Heap.Pool_backed () in
  let heap_b = Heap.create ~mode:Heap.Pool_backed () in
  (* Deferred app work: events fire synchronously inside [input], so
     callbacks only record; the poll loop below does the API calls. *)
  let established_a : Stack.conn Queue.t = Queue.create () in
  let readable_a : Stack.conn Queue.t = Queue.create () in
  let readable_b : Stack.conn Queue.t = Queue.create () in
  let accept_ready : Stack.listener Queue.t = Queue.create () in
  let closed_a = ref 0 and closed_b = ref 0 in
  let ev_a = function
    | Stack.Established c -> Queue.add c established_a
    | Stack.Readable c -> Queue.add c readable_a
    | Stack.Closed _ | Stack.Reset _ -> incr closed_a
    | _ -> ()
  and ev_b = function
    | Stack.Accept_ready l -> Queue.add l accept_ready
    | Stack.Readable c -> Queue.add c readable_b
    | Stack.Closed _ | Stack.Reset _ -> incr closed_b
    | _ -> ()
  in
  let mk_iface idx peer =
    Tcp.Iface.create
      ~mac:(Net.Addr.Mac.of_index idx)
      ~ip:(Net.Addr.Ip.of_index idx)
      ~clock:(fun () -> !clock)
      ~tx_frame:(fun f -> Queue.add (!clock + latency, peer, f) q)
      ()
  in
  let a =
    Stack.create ~iface:(mk_iface 1 1) ~heap:heap_a ~prng:(Engine.Prng.create 11L)
      ~events:ev_a ()
  in
  let b =
    Stack.create ~iface:(mk_iface 2 0) ~heap:heap_b ~prng:(Engine.Prng.create 22L)
      ~events:ev_b ()
  in
  let stacks = [| a; b |] in
  let _listener = Stack.tcp_listen b ~port:7 ~backlog:(n + 16) in
  let clients : (int, churn_client) Hashtbl.t = Hashtbl.create (2 * n) in
  let send_msg conn =
    let buf = Heap.alloc_of_string heap_a (String.make msg_size 'x') in
    Stack.tcp_send conn [ buf ];
    (* Zero-copy discipline: the stack holds per-segment refs; the app
       drops its own reference right after the push (echo-server idiom). *)
    Heap.free buf
  in
  let drain_client conn =
    let st = Hashtbl.find clients (Stack.conn_id conn) in
    let rec go () =
      match Stack.tcp_recv conn with
      | `Data buf ->
          st.got <- st.got + Heap.length buf;
          Heap.free buf;
          go ()
      | `Eof | `Nothing -> ()
    in
    go ();
    if st.got >= msg_size then begin
      st.got <- st.got - msg_size;
      st.rounds_left <- st.rounds_left - 1;
      if st.rounds_left > 0 then send_msg conn else Stack.tcp_close conn
    end
  in
  let drain_server conn =
    let rec go () =
      match Stack.tcp_recv conn with
      | `Data buf ->
          Stack.tcp_send conn [ buf ];
          Heap.free buf;
          go ()
      | `Eof ->
          if Stack.conn_state conn = Stack.Close_wait then Stack.tcp_close conn
      | `Nothing -> ()
    in
    go ()
  in
  let app_work () =
    let worked = ref false in
    while not (Queue.is_empty accept_ready) do
      worked := true;
      let l = Queue.pop accept_ready in
      let rec accept_all () =
        match Stack.tcp_accept l with
        | Some c ->
            drain_server c;
            accept_all ()
        | None -> ()
      in
      accept_all ()
    done;
    while not (Queue.is_empty established_a) do
      worked := true;
      let c = Queue.pop established_a in
      Hashtbl.replace clients (Stack.conn_id c) { rounds_left = rounds; got = 0 };
      send_msg c
    done;
    while not (Queue.is_empty readable_a) do
      worked := true;
      drain_client (Queue.pop readable_a)
    done;
    while not (Queue.is_empty readable_b) do
      worked := true;
      drain_server (Queue.pop readable_b)
    done;
    !worked
  in
  let opt v = match v with Some d -> d | None -> max_int in
  let run () =
    (* Open everything up front: 10k SYNs hit the listener in bursts. *)
    for _ = 1 to n do
      ignore (Stack.tcp_connect a ~dst:(Net.Addr.endpoint (Net.Addr.Ip.of_index 2) 7))
    done;
    let guard = ref 50_000_000 in
    let finished () = !closed_a >= n && !closed_b >= n in
    let continue = ref true in
    while !continue do
      decr guard;
      if !guard = 0 then failwith "churn: no quiescence";
      (* Deliver one burst of due frames (catnip rx_burst analogue). *)
      let delivered = ref 0 in
      while
        !delivered < burst
        && (not (Queue.is_empty q))
        &&
        let at, _, _ = Queue.peek q in
        at <= !clock
      do
        let _, dest, frame = Queue.pop q in
        Stack.input stacks.(dest) frame;
        incr delivered;
        incr frames
      done;
      (* The per-poll timer/ack work this bench exists to measure: the
         Catnip fast path runs these after every burst, plus a
         next-deadline peek when deciding whether to park. *)
      Stack.flush_acks a;
      Stack.flush_acks b;
      Stack.on_timer a;
      Stack.on_timer b;
      incr polls;
      let worked = app_work () in
      if (not worked) && !delivered = 0 then
        if finished () && Queue.is_empty q then continue := false
        else begin
          (* Nothing due now: park until the next frame arrival or timer
             deadline, whichever is first. *)
          let next_frame = if Queue.is_empty q then max_int else (fun (at, _, _) -> at) (Queue.peek q) in
          let t = min (min (opt (Stack.next_timer a)) (opt (Stack.next_timer b))) next_frame in
          if t = max_int then continue := false (* deadlocked; report what we have *)
          else clock := max !clock t
        end
    done
  in
  let (), wall_s, gc_alloc_mb = time_and_gc run in
  if !closed_a < n || !closed_b < n then
    Printf.eprintf "churn: WARNING only %d/%d (a) %d/%d (b) conns closed\n%!" !closed_a n
      !closed_b n;
  {
    label = "churn";
    wall_s;
    events = !polls;
    frames = !frames;
    gc_alloc_mb;
    ops = n;
  }

(* --- Baseline (pre-Demialloc) reference numbers ---

   Measured with this exact harness on the tree as of commit 261ad25
   (the PR 6 seed, before the hot-path allocation work), same machine,
   same settings (echo count=5000, churn conns=10000 rounds=1 burst=64).
   They are embedded so the committed bench can always report the
   current tree's wall-clock speedup and GC-allocation reduction
   against the pre-change paths. *)

let baseline_commit = "261ad25"
let baseline_echo_count = 5_000
let baseline_echo_wall_s = 0.1284
let baseline_echo_gc_mb = 160.1
let baseline_churn_conns = 10_000
let baseline_churn_wall_s = 0.1800
let baseline_churn_gc_mb = 184.4

let per_sec count wall = if wall > 0. then float_of_int count /. wall else 0.

let sample_json s =
  Printf.sprintf
    {|    "%s": { "wall_s": %.4f, "events": %d, "events_per_sec": %.0f, "frames": %d, "frames_per_sec": %.0f, "gc_alloc_mb": %.1f, "ops": %d }|}
    s.label s.wall_s s.events (per_sec s.events s.wall_s) s.frames
    (per_sec s.frames s.wall_s) s.gc_alloc_mb s.ops

let run ~quick ?(out = "BENCH_pr6.json") () =
  let echo_count = if quick then 500 else baseline_echo_count in
  let e = echo ~count:echo_count () in
  Printf.printf "wallclock echo : %.3fs  %d events (%.0f/s)  %d frames (%.0f/s)  %.1f MB alloc\n%!"
    e.wall_s e.events (per_sec e.events e.wall_s) e.frames (per_sec e.frames e.wall_s)
    e.gc_alloc_mb;
  let c = churn ~conns:baseline_churn_conns ~rounds:1 ~msg_size:64 () in
  Printf.printf
    "wallclock churn: %.3fs  %d polls (%.0f/s)  %d frames (%.0f/s)  %.1f MB alloc  (%d conns)\n%!"
    c.wall_s c.events (per_sec c.events c.wall_s) c.frames (per_sec c.frames c.wall_s)
    c.gc_alloc_mb c.ops;
  let churn_speedup =
    if baseline_churn_wall_s > 0. then baseline_churn_wall_s /. c.wall_s else 0.
  in
  (* Per-echo wall time / allocation are the scale-free comparisons
     (quick mode runs fewer echos than the baseline measurement did);
     churn always runs the full connection count, so its GC ratio is
     direct. *)
  let echo_us_per_op = 1e6 *. e.wall_s /. float_of_int (max 1 e.ops) in
  let baseline_echo_us_per_op =
    1e6 *. baseline_echo_wall_s /. float_of_int baseline_echo_count
  in
  let echo_gc_kb_per_op = 1024. *. e.gc_alloc_mb /. float_of_int (max 1 e.ops) in
  let baseline_echo_gc_kb_per_op =
    1024. *. baseline_echo_gc_mb /. float_of_int baseline_echo_count
  in
  let gc_reduction_echo =
    if echo_gc_kb_per_op > 0. then baseline_echo_gc_kb_per_op /. echo_gc_kb_per_op else 0.
  in
  let gc_reduction_churn =
    if c.gc_alloc_mb > 0. then baseline_churn_gc_mb /. c.gc_alloc_mb else 0.
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "pr": 6,
  "mode": "%s",
  "samples": {
%s,
%s
  },
  "baseline": { "commit": "%s", "harness": "this file, pre-change tree", "echo_count": %d, "echo_wall_s": %.4f, "echo_us_per_op": %.2f, "echo_gc_mb": %.1f, "churn_conns": %d, "churn_wall_s": %.4f, "churn_gc_mb": %.1f },
  "echo_us_per_op": %.2f,
  "echo_gc_kb_per_op": %.2f,
  "speedup_churn": %.2f,
  "gc_reduction_echo": %.2f,
  "gc_reduction_churn": %.2f
}
|}
    (if quick then "quick" else "default")
    (sample_json e) (sample_json c) baseline_commit baseline_echo_count baseline_echo_wall_s
    baseline_echo_us_per_op baseline_echo_gc_mb baseline_churn_conns baseline_churn_wall_s
    baseline_churn_gc_mb echo_us_per_op echo_gc_kb_per_op churn_speedup gc_reduction_echo
    gc_reduction_churn;
  close_out oc;
  Printf.printf "wrote %s (speedup_churn=%.2fx, gc_reduction_churn=%.2fx vs %s)\n%!" out
    churn_speedup gc_reduction_churn baseline_commit
